(** The interval abstract domain (Sect. 6.2.1), for both integer and
    floating-point values, with sound outward rounding on float bounds and
    handling of the IEEE special values.

    Integer bounds are native OCaml integers with [min_int]/[max_int]
    acting as -oo/+oo (all target integer types are at most 32-bit so
    finite bounds are exact).  Float bounds are binary64 with outward
    rounding; NaN never appears in a bound — possible invalid operations
    are reported separately by the transfer functions of the analyzer. *)

module Sat = Float_utils.Sat

type t =
  | Bot                     (** unreachable *)
  | Int of int * int        (** integer interval [lo, hi] *)
  | Float of float * float  (** float interval [lo, hi], bounds never NaN *)

(* ------------------------------------------------------------------ *)
(* Constructors and views                                              *)
(* ------------------------------------------------------------------ *)

let bot = Bot

let int_range lo hi = if lo > hi then Bot else Int (lo, hi)

let float_range lo hi =
  if Float.is_nan lo || Float.is_nan hi || lo > hi then Bot else Float (lo, hi)

let int_const n = Int (n, n)
let float_const f = if Float.is_nan f then Bot else Float (f, f)

let top_int = Int (Sat.neg_inf, Sat.pos_inf)
let top_float = Float (Float.neg_infinity, Float.infinity)

let is_bot = function Bot -> true | _ -> false

let is_int = function Int _ -> true | _ -> false

let is_float = function Float _ -> true | _ -> false

let is_singleton = function
  | Int (a, b) -> a = b
  | Float (a, b) -> a = b
  | Bot -> false

(** Finite width, when both bounds are finite. *)
let width = function
  | Bot -> Some 0.0
  | Int (a, b) when not (Sat.is_inf a || Sat.is_inf b) ->
      Some (float_of_int (b - a))
  | Float (a, b) when Float.abs a <> Float.infinity && Float.abs b <> Float.infinity ->
      Some (b -. a)
  | _ -> None

let equal a b =
  match (a, b) with
  | Bot, Bot -> true
  | Int (x, y), Int (x', y') -> x = x' && y = y'
  | Float (x, y), Float (x', y') -> x = x' && y = y'
  | _ -> false

let pp ppf = function
  | Bot -> Fmt.string ppf "_|_"
  | Int (a, b) ->
      let pb ppf x =
        if x = Sat.neg_inf then Fmt.string ppf "-oo"
        else if x = Sat.pos_inf then Fmt.string ppf "+oo"
        else Fmt.int ppf x
      in
      Fmt.pf ppf "[%a, %a]" pb a pb b
  | Float (a, b) -> Fmt.pf ppf "[%g, %g]" a b

(* ------------------------------------------------------------------ *)
(* Lattice operations                                                  *)
(* ------------------------------------------------------------------ *)

let subset a b =
  match (a, b) with
  | Bot, _ -> true
  | _, Bot -> false
  | Int (x, y), Int (x', y') -> x >= x' && y <= y'
  | Float (x, y), Float (x', y') -> x >= x' && y <= y'
  | Int (x, y), Float (x', y') ->
      (* an integer set is included in a float interval if its hull is *)
      (Sat.is_inf x && x' = Float.neg_infinity || (not (Sat.is_inf x)) && float_of_int x >= x')
      && (Sat.is_inf y && y' = Float.infinity || (not (Sat.is_inf y)) && float_of_int y <= y')
  | Float _, Int _ -> false

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Int (x, y), Int (x', y') -> Int (min x x', max y y')
  | Float (x, y), Float (x', y') -> Float (min x x', max y y')
  | Int _, Float _ | Float _, Int _ -> invalid_arg "Itv.join: kind mismatch"

let meet a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Int (x, y), Int (x', y') -> int_range (max x x') (min y y')
  | Float (x, y), Float (x', y') -> float_range (max x x') (min y y')
  | Int _, Float _ | Float _, Int _ -> invalid_arg "Itv.meet: kind mismatch"

(* Counts unstable bounds caught by a finite threshold instead of
   escaping to infinity — the signal that the threshold set is doing its
   job (ISSUE 5; surfaced per loop head in the fixpoint trace). *)
let threshold_hits = Astree_obs.Metrics.counter "widen.threshold_hits"

(** Widening with thresholds (Sect. 7.1.2): an unstable bound jumps to the
    nearest enclosing threshold.  The threshold sets always contain
    -oo/+oo so the result is defined. *)
let widen ~(thresholds : float array) a b =
  (* thresholds is sorted ascending and symmetric, containing +-infinity *)
  let up_float v =
    let n = Array.length thresholds in
    let rec go i = if i >= n then Float.infinity
      else if thresholds.(i) >= v then thresholds.(i) else go (i + 1)
    in
    go 0
  in
  let down_float v =
    let n = Array.length thresholds in
    let rec go i = if i < 0 then Float.neg_infinity
      else if thresholds.(i) <= v then thresholds.(i) else go (i - 1)
    in
    go (n - 1)
  in
  let up_int v =
    if v = Sat.pos_inf then Sat.pos_inf
    else
      let f = up_float (float_of_int v) in
      if f >= 4.0e18 then Sat.pos_inf else int_of_float (Float.ceil f)
  in
  let down_int v =
    if v = Sat.neg_inf then Sat.neg_inf
    else
      let f = down_float (float_of_int v) in
      if f <= -4.0e18 then Sat.neg_inf else int_of_float (Float.floor f)
  in
  let hit_int v =
    if v <> Sat.neg_inf && v <> Sat.pos_inf then
      Astree_obs.Metrics.incr threshold_hits;
    v
  in
  let hit_float v =
    if Float.is_finite v then Astree_obs.Metrics.incr threshold_hits;
    v
  in
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Int (x, y), Int (x', y') ->
      Int
        ((if x' < x then hit_int (down_int x') else x),
         if y' > y then hit_int (up_int y') else y)
  | Float (x, y), Float (x', y') ->
      Float
        ((if x' < x then hit_float (down_float x') else x),
         if y' > y then hit_float (up_float y') else y)
  | Int _, Float _ | Float _, Int _ -> invalid_arg "Itv.widen: kind mismatch"

(** Narrowing: refine infinite bounds only (standard interval narrowing,
    Sect. 5.5), guaranteeing termination. *)
let narrow a b =
  match (a, b) with
  | Bot, _ -> Bot
  | _, Bot -> Bot
  | Int (x, y), Int (x', y') ->
      int_range (if x = Sat.neg_inf then x' else x)
        (if y = Sat.pos_inf then y' else y)
  | Float (x, y), Float (x', y') ->
      float_range
        (if x = Float.neg_infinity then x' else x)
        (if y = Float.infinity then y' else y)
  | Int _, Float _ | Float _, Int _ -> invalid_arg "Itv.narrow: kind mismatch"

(* ------------------------------------------------------------------ *)
(* Forward transfer functions                                          *)
(* ------------------------------------------------------------------ *)

(* Integer operations are computed on unbounded integers; the analyzer's
   transfer layer intersects with the type range and reports overflow
   alarms. *)

let neg = function
  | Bot -> Bot
  | Int (a, b) -> Int (Sat.neg b, Sat.neg a)
  | Float (a, b) -> Float (-.b, -.a)

let add x y =
  match (x, y) with
  | Bot, _ | _, Bot -> Bot
  | Int (a, b), Int (c, d) -> Int (Sat.add a c, Sat.add b d)
  | Float (a, b), Float (c, d) ->
      float_range (Float_utils.add_down a c) (Float_utils.add_up b d)
  | _ -> invalid_arg "Itv.add: kind mismatch"

let sub x y =
  match (x, y) with
  | Bot, _ | _, Bot -> Bot
  | Int (a, b), Int (c, d) -> Int (Sat.sub a d, Sat.sub b c)
  | Float (a, b), Float (c, d) ->
      float_range (Float_utils.sub_down a d) (Float_utils.sub_up b c)
  | _ -> invalid_arg "Itv.sub: kind mismatch"

let mul x y =
  match (x, y) with
  | Bot, _ | _, Bot -> Bot
  | Int (a, b), Int (c, d) ->
      let p1 = Sat.mul a c and p2 = Sat.mul a d in
      let p3 = Sat.mul b c and p4 = Sat.mul b d in
      Int (min (min p1 p2) (min p3 p4), max (max p1 p2) (max p3 p4))
  | Float (a, b), Float (c, d) ->
      let lo =
        min
          (min (Float_utils.mul_down a c) (Float_utils.mul_down a d))
          (min (Float_utils.mul_down b c) (Float_utils.mul_down b d))
      in
      let hi =
        max
          (max (Float_utils.mul_up a c) (Float_utils.mul_up a d))
          (max (Float_utils.mul_up b c) (Float_utils.mul_up b d))
      in
      float_range lo hi
  | _ -> invalid_arg "Itv.mul: kind mismatch"

(* Division excluding 0 from the divisor (the caller reports the
   division-by-zero alarm and continues with the non-erroneous results,
   Sect. 5.3). *)
let div x y =
  match (x, y) with
  | Bot, _ | _, Bot -> Bot
  | Int (a, b), Int (c, d) ->
      (* split the divisor at 0 *)
      let pos = if d >= 1 then Some (max c 1, d) else None in
      let neg = if c <= -1 then Some (c, min d (-1)) else None in
      let quot (c, d) =
        let q1 = Sat.div a c and q2 = Sat.div a d in
        let q3 = Sat.div b c and q4 = Sat.div b d in
        (min (min q1 q2) (min q3 q4), max (max q1 q2) (max q3 q4))
      in
      let r1 = Option.map quot pos and r2 = Option.map quot neg in
      (match (r1, r2) with
      | None, None -> Bot
      | Some (l, h), None | None, Some (l, h) -> Int (l, h)
      | Some (l1, h1), Some (l2, h2) -> Int (min l1 l2, max h1 h2))
  | Float (a, b), Float (c, d) ->
      (* directed division on possibly-infinite bounds; conservative on
         inf/inf (the result bound escapes to the rounding direction) *)
      let sdiv_up x y =
        if x = 0.0 then 0.0
        else if Float.abs x = Float.infinity && Float.abs y = Float.infinity
        then Float.infinity
        else if Float.abs y = Float.infinity then 0.0
        else Float_utils.div_up x y
      in
      let sdiv_down x y =
        if x = 0.0 then 0.0
        else if Float.abs x = Float.infinity && Float.abs y = Float.infinity
        then Float.neg_infinity
        else if Float.abs y = Float.infinity then 0.0
        else Float_utils.div_down x y
      in
      let strictly_pos c d =
        (* divisor in [c, d], c > 0 *)
        let lo = min (sdiv_down a c) (sdiv_down a d) in
        let hi = max (sdiv_up b c) (sdiv_up b d) in
        float_range lo hi
      in
      let strictly_neg c d =
        (* divisor in [c, d], d < 0 *)
        let lo = min (sdiv_down b c) (sdiv_down b d) in
        let hi = max (sdiv_up a c) (sdiv_up a d) in
        float_range lo hi
      in
      if c > 0.0 then strictly_pos c d
      else if d < 0.0 then strictly_neg c d
      else begin
        (* the divisor range touches 0: quotients are unbounded on the
           side(s) where the dividend is non-zero *)
        let parts = ref [] in
        if d > 0.0 then begin
          let lo = if a >= 0.0 then sdiv_down a d else Float.neg_infinity in
          let hi = if b <= 0.0 then sdiv_up b d else Float.infinity in
          parts := float_range lo hi :: !parts
        end;
        if c < 0.0 then begin
          let lo = if b <= 0.0 then sdiv_down b c else Float.neg_infinity in
          let hi = if a >= 0.0 then sdiv_up a c else Float.infinity in
          parts := float_range lo hi :: !parts
        end;
        List.fold_left
          (fun acc p -> match (acc, p) with
            | Bot, p -> p
            | acc, Bot -> acc
            | acc, p -> join acc p)
          Bot !parts
      end
  | _ -> invalid_arg "Itv.div: kind mismatch"

(* C truncated remainder; divisor 0 excluded by the caller. *)
let rem x y =
  match (x, y) with
  | Bot, _ | _, Bot -> Bot
  | Int (a, b), Int (c, d) ->
      if c = Sat.neg_inf || d = Sat.pos_inf then
        (* |x mod y| < |y|, same sign as x *)
        Int ((if a < 0 then Sat.neg_inf else 0), if b > 0 then Sat.pos_inf else 0)
      else
        let m = max (abs c) (abs d) in
        if m = 0 then Bot
        else
          let lo = if a < 0 then -(m - 1) else 0 in
          let hi = if b > 0 then m - 1 else 0 in
          (* tighten using the dividend's magnitude *)
          let lo = if not (Sat.is_inf a) then max lo a else lo in
          let hi = if not (Sat.is_inf b) then min hi b else hi in
          int_range lo hi
  | _ -> invalid_arg "Itv.rem: integer only"

let abs = function
  | Bot -> Bot
  | Int (a, b) ->
      if a >= 0 then Int (a, b)
      else if b <= 0 then Int (Sat.neg b, Sat.neg a)
      else Int (0, max (Sat.neg a) b)
  | Float (a, b) ->
      if a >= 0.0 then Float (a, b)
      else if b <= 0.0 then Float (-.b, -.a)
      else Float (0.0, Float.max (-.a) b)

(* sqrt on the non-negative part; caller alarms if lo < 0 *)
let sqrt_itv = function
  | Bot -> Bot
  | Float (a, b) ->
      if b < 0.0 then Bot
      else
        let a' = if a < 0.0 then 0.0 else a in
        float_range (Float_utils.sqrt_down a') (Float_utils.sqrt_up b)
  | Int _ -> invalid_arg "Itv.sqrt: float only"

(* Bitwise operations: precise on singletons and non-negative ranges. *)
let shl x y =
  match (x, y) with
  | Bot, _ | _, Bot -> Bot
  | Int (a, b), Int (c, d) when c = d && c >= 0 && c <= 62 ->
      Int (Sat.mul a (1 lsl c), Sat.mul b (1 lsl c))
  | Int (a, _), Int (c, d) when a >= 0 && c >= 0 && d <= 62 ->
      Int (0, Sat.mul (match x with Int (_, b) -> b | _ -> 0) (1 lsl d))
  | Int _, Int _ -> top_int
  | _ -> invalid_arg "Itv.shl: integer only"

let shr x y =
  match (x, y) with
  | Bot, _ | _, Bot -> Bot
  | Int (a, b), Int (c, d) when c = d && c >= 0 && c <= 62 ->
      Int ((if Sat.is_inf a then a else a asr c),
           if Sat.is_inf b then b else b asr c)
  | Int (a, b), Int (c, _) when c >= 0 ->
      (* shifting right by a non-negative amount shrinks the magnitude *)
      Int ((if a >= 0 then 0 else a), if b <= 0 then 0 else b)
  | Int _, Int _ -> top_int
  | _ -> invalid_arg "Itv.shr: integer only"

(* land/lor/lxor: precise on singletons; ranges fall back to magnitude
   bounds for non-negative inputs. *)
let bitop op x y =
  match (x, y) with
  | Bot, _ | _, Bot -> Bot
  | Int (a, b), Int (c, d) when a = b && c = d -> int_const (op a c)
  | Int (a, b), Int (c, d) when a >= 0 && c >= 0 && not (Sat.is_inf b || Sat.is_inf d) ->
      (* all three bitwise ops on [0,b]x[0,d] stay within [0, 2^k-1] where
         2^k-1 >= max b d *)
      let rec pow2m1 v acc = if acc >= v then acc else pow2m1 v ((acc * 2) + 1) in
      Int (0, pow2m1 (max b d) 1)
  | Int _, Int _ -> top_int
  | _ -> invalid_arg "Itv.bitop: integer only"

let band = bitop ( land )
let bor = bitop ( lor )
let bxor = bitop ( lxor )

let bnot = function
  | Bot -> Bot
  | Int (a, b) ->
      Int ((if Sat.is_inf b then Sat.neg b else lnot b),
           if Sat.is_inf a then Sat.neg a else lnot a)
  | Float _ -> invalid_arg "Itv.bnot: integer only"

(* ------------------------------------------------------------------ *)
(* Conversions                                                         *)
(* ------------------------------------------------------------------ *)

(** Conversion of an integer interval to a float interval (exact for
    magnitudes below 2^52; rounded outward above). *)
let int_to_float = function
  | Bot -> Bot
  | Int (a, b) ->
      let lo =
        if a = Sat.neg_inf then Float.neg_infinity
        else Float_utils.round_down (float_of_int a)
      in
      let hi =
        if b = Sat.pos_inf then Float.infinity
        else Float_utils.round_up (float_of_int b)
      in
      Float (lo, hi)
  | Float _ as f -> f

(** Truncation of a float interval to an integer interval (C semantics:
    rounding toward zero).  The caller checks representability. *)
let float_to_int = function
  | Bot -> Bot
  | Float (a, b) ->
      let lo =
        if a = Float.neg_infinity || a < -9.0e18 then Sat.neg_inf
        else int_of_float (Float.trunc a)
      in
      let hi =
        if b = Float.infinity || b > 9.0e18 then Sat.pos_inf
        else int_of_float (Float.trunc b)
      in
      Int (lo, hi)
  | Int _ as i -> i

(** Round a float interval to binary32, outward. *)
let to_single = function
  | Bot -> Bot
  | Float (a, b) ->
      let lo, _ = Float_utils.single_bounds a in
      let _, hi = Float_utils.single_bounds b in
      Float (lo, hi)
  | Int _ -> invalid_arg "Itv.to_single: float only"

(** Interval of all values of a C integer type. *)
let of_int_type tgt r s =
  let lo, hi = Astree_frontend.Ctypes.range_of_int_type tgt r s in
  Int (lo, hi)

(** Interval of all finite values of a C float kind. *)
let of_float_kind k =
  let m = Float_utils.fmax k in
  Float (-.m, m)

(* ------------------------------------------------------------------ *)
(* Backward (guard) refinements                                        *)
(* ------------------------------------------------------------------ *)

(** Refine [x] under the constraint [x <= y] (componentwise on kinds).
    Returns the refined x. *)
let refine_le x y =
  match (x, y) with
  | Bot, _ | _, Bot -> Bot
  | Int (a, b), Int (_, d) -> int_range a (min b d)
  | Float (a, b), Float (_, d) -> float_range a (Float.min b d)
  | _ -> x

let refine_ge x y =
  match (x, y) with
  | Bot, _ | _, Bot -> Bot
  | Int (a, b), Int (c, _) -> int_range (max a c) b
  | Float (a, b), Float (c, _) -> float_range (Float.max a c) b
  | _ -> x

(** Refine [x] under strict [x < y]. *)
let refine_lt x y =
  match (x, y) with
  | Bot, _ | _, Bot -> Bot
  | Int (a, b), Int (_, d) ->
      int_range a (min b (if Sat.is_inf d then d else d - 1))
  | Float (a, b), Float (_, d) ->
      (* strict bound: the largest float below d *)
      float_range a (Float.min b (if Float.abs d = Float.infinity then d else Float_utils.fpred d))
  | _ -> x

let refine_gt x y =
  match (x, y) with
  | Bot, _ | _, Bot -> Bot
  | Int (a, b), Int (c, _) ->
      int_range (max a (if Sat.is_inf c then c else c + 1)) b
  | Float (a, b), Float (c, _) ->
      float_range (Float.max a (if Float.abs c = Float.infinity then c else Float_utils.fsucc c)) b
  | _ -> x

let refine_eq x y = meet x y

(** Refine [x] under [x <> y]: only effective when y is a singleton at one
    of x's integer bounds. *)
let refine_ne x y =
  match (x, y) with
  | Bot, _ -> Bot
  | _, Bot -> Bot
  | Int (a, b), Int (c, d) when c = d ->
      if a = c && b = c then Bot
      else if a = c then int_range (a + 1) b
      else if b = c then int_range a (b - 1)
      else x
  | _ -> x

(** Remove 0 from an interval (for division guards). *)
let exclude_zero = function
  | Bot -> Bot
  | Int (a, b) ->
      if a = 0 && b = 0 then Bot
      else if a = 0 then Int (1, b)
      else if b = 0 then Int (a, -1)
      else Int (a, b)
  | Float (a, b) ->
      if a = 0.0 && b = 0.0 then Bot else Float (a, b)

(** Does the interval contain the integer/float zero? *)
let contains_zero = function
  | Bot -> false
  | Int (a, b) -> a <= 0 && b >= 0
  | Float (a, b) -> a <= 0.0 && b >= 0.0

(** Convex hull of the interval as floats (used by relational domains that
    work in the real field). *)
let float_hull = function
  | Bot -> None
  | Int (a, b) ->
      Some
        ((if a = Sat.neg_inf then Float.neg_infinity else float_of_int a),
         if b = Sat.pos_inf then Float.infinity else float_of_int b)
  | Float (a, b) -> Some (a, b)
