(* Lightweight analysis-wide profiling: per-domain cumulative timers and
   operation counters, reported by the --profile CLI flag.

   Counters are always on (a single int increment, cheap enough for the
   hottest paths, and the octagon regression tests rely on them); wall-
   clock timers only run when [enabled] is set, so the default build pays
   one ref read per probe site.

   The module lives in the domains library because both the domains
   (octagon close/join/widen) and the core (environment join, interval
   transfer) need probes, and core depends on domains.

   With -j > 1 the report covers the coordinator process only: worker
   processes inherit [enabled] over fork but their accumulators die with
   them. *)

type probe = int

let oct_close_full = 0
let oct_close_incr = 1
let oct_close_skip = 2
let oct_join = 3
let oct_widen = 4
let env_join = 5
let itv_transfer = 6
let widen_total = 7
let n_probes = 8

let names =
  [|
    "octagon close (full)";
    "octagon close (incremental)";
    "octagon close (skipped, already closed)";
    "octagon join";
    "octagon widen";
    "env join";
    "interval transfer (eval)";
    "widening (all domains)";
  |]

let enabled = ref false
let counts = Array.make n_probes 0
let timers = Array.make n_probes 0.0

let count (p : probe) = counts.(p) <- counts.(p) + 1
let counter (p : probe) = counts.(p)

let start () = if !enabled then Unix.gettimeofday () else 0.0

let stop (p : probe) (t0 : float) =
  if !enabled then timers.(p) <- timers.(p) +. (Unix.gettimeofday () -. t0)

let reset () =
  Array.fill counts 0 n_probes 0;
  Array.fill timers 0 n_probes 0.0

let report ppf =
  Format.fprintf ppf "--- profile (cumulative, this process) ---@.";
  for p = 0 to n_probes - 1 do
    Format.fprintf ppf "%-42s %10d calls %12.6f s@." names.(p) counts.(p)
      timers.(p)
  done
