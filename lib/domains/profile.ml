(* Lightweight analysis-wide profiling probes, reported by the
   --profile CLI flag.

   Since the observability PR this module is a thin compatibility layer
   over the unified registry (Astree_obs.Metrics): each probe is a named
   counter + timer pair there, so probe values ship inside parallel
   worker deltas, merge deterministically at the coordinator, and appear
   in --metrics / --format json output alongside everything else.

   Counters are always on (a single record-field increment, cheap enough
   for the hottest paths, and the octagon regression tests rely on
   them); wall-clock timers only run when [enabled] is set, so the
   default build pays one ref read per probe site. *)

module Metrics = Astree_obs.Metrics

type probe = int

let oct_close_full = 0
let oct_close_incr = 1
let oct_close_skip = 2
let oct_join = 3
let oct_widen = 4
let env_join = 5
let itv_transfer = 6
let widen_total = 7
let n_probes = 8

let names =
  [|
    "octagon close (full)";
    "octagon close (incremental)";
    "octagon close (skipped, already closed)";
    "octagon join";
    "octagon widen";
    "env join";
    "interval transfer (eval)";
    "widening (all domains)";
  |]

(* registry names: stable machine-readable ids for --metrics output *)
let keys =
  [|
    "oct.close.full";
    "oct.close.incr";
    "oct.close.skip";
    "oct.join";
    "oct.widen";
    "env.join";
    "itv.transfer";
    "widen.total";
  |]

let counters = Array.map Metrics.counter keys
let timers = Array.map (fun k -> Metrics.timer (k ^ ".time")) keys

let enabled = Metrics.timing

let count (p : probe) = Metrics.incr counters.(p)
let counter (p : probe) = Metrics.value counters.(p)
let start () = Metrics.start ()
let stop (p : probe) (t0 : float) = Metrics.stop timers.(p) t0

let reset () =
  Array.iter
    (fun k ->
      Metrics.reset_named k;
      Metrics.reset_named (k ^ ".time"))
    keys

let report ppf =
  Format.fprintf ppf "--- profile (cumulative, merged across workers) ---@.";
  for p = 0 to n_probes - 1 do
    Format.fprintf ppf "%-42s %10d calls %12.6f s@." names.(p)
      (Metrics.value counters.(p))
      (Metrics.timer_value timers.(p))
  done
