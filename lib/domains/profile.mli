(** Per-domain cumulative timers and operation counters for the
    [--profile] CLI flag.

    Probes are named entries in the unified registry
    ([Astree_obs.Metrics]), so with [-j > 1] worker-side counts ship
    back inside result deltas and the report covers the whole run, not
    just the coordinator process.

    Counters are always on; timers only accumulate when [enabled] is
    set ([enabled] is an alias of [Metrics.timing]). *)

type probe

val oct_close_full : probe
(** Full (cubic) strong closures. *)

val oct_close_incr : probe
(** Incremental strong closures. *)

val oct_close_skip : probe
(** [close_incremental] calls that found the octagon already closed. *)

val oct_join : probe
val oct_widen : probe
val env_join : probe
val itv_transfer : probe
val widen_total : probe

val enabled : bool ref

val count : probe -> unit
(** Bump a probe's call counter (always recorded). *)

val counter : probe -> int
(** Current counter value (used by the regression tests). *)

val start : unit -> float
(** Timestamp when [enabled], else 0; pass the result to {!stop}. *)

val stop : probe -> float -> unit
(** Accumulate elapsed wall-clock time against a probe when [enabled]. *)

val reset : unit -> unit
val report : Format.formatter -> unit
