bin/genfamily.mli:
