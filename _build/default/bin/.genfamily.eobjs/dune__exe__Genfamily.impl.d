bin/genfamily.ml: Arg Astree_gen Cmd Cmdliner Fmt Term
