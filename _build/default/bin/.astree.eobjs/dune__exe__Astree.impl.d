bin/astree.ml: Arg Astree_core Astree_domains Astree_frontend Astree_slicer Cmd Cmdliner Fmt List Str String Term
