bin/astree.mli:
