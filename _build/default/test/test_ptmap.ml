(* Patricia-tree environments (Sect. 6.1.2): model-based property tests
   against Stdlib.Map, plus sharing/short-cut checks. *)

module P = Astree_core.Ptmap
module M = Map.Make (Int)

let gen_ops : (int * int) list QCheck.Gen.t =
  QCheck.Gen.(list_size (int_range 0 60) (pair (int_range 0 200) small_nat))

let arb_ops =
  QCheck.make
    ~print:(fun l ->
      String.concat ";" (List.map (fun (k, v) -> Fmt.str "%d->%d" k v) l))
    gen_ops

let build_both ops =
  List.fold_left
    (fun (p, m) (k, v) -> (P.add k v p, M.add k v m))
    (P.empty, M.empty) ops

let prop_model_find =
  QCheck.Test.make ~name:"add/find agrees with Map" arb_ops (fun ops ->
      let p, m = build_both ops in
      M.for_all (fun k v -> P.find_opt k p = Some v) m
      && P.for_all (fun k v -> M.find_opt k m = Some v) p)

let prop_model_remove =
  QCheck.Test.make ~name:"remove agrees with Map"
    (QCheck.pair arb_ops (QCheck.int_range 0 200))
    (fun (ops, k) ->
      let p, m = build_both ops in
      let p = P.remove k p and m = M.remove k m in
      P.find_opt k p = None
      && M.for_all (fun k v -> P.find_opt k p = Some v) m
      && P.cardinal p = M.cardinal m)

let prop_union_model =
  QCheck.Test.make ~name:"union_idem agrees with Map.union"
    (QCheck.pair arb_ops arb_ops)
    (fun (o1, o2) ->
      let p1, m1 = build_both o1 and p2, m2 = build_both o2 in
      let pu = P.union_idem (fun _ a b -> max a b) p1 p2 in
      let mu = M.union (fun _ a b -> Some (max a b)) m1 m2 in
      M.for_all (fun k v -> P.find_opt k pu = Some v) mu
      && P.cardinal pu = M.cardinal mu)

let prop_inter_model =
  QCheck.Test.make ~name:"inter_keys agrees with Map intersection"
    (QCheck.pair arb_ops arb_ops)
    (fun (o1, o2) ->
      let p1, m1 = build_both o1 and p2, m2 = build_both o2 in
      let pi = P.inter_keys (fun _ a b -> Some (min a b)) p1 p2 in
      let mi =
        M.merge
          (fun _ a b ->
            match (a, b) with Some a, Some b -> Some (min a b) | _ -> None)
          m1 m2
      in
      M.for_all (fun k v -> P.find_opt k pi = Some v) mi
      && P.cardinal pi = M.cardinal mi)

let prop_subset =
  QCheck.Test.make ~name:"subset_by matches pointwise definition"
    (QCheck.pair arb_ops arb_ops)
    (fun (o1, o2) ->
      let p1, m1 = build_both o1 and p2, m2 = build_both o2 in
      let expected =
        M.for_all
          (fun k v2 ->
            match M.find_opt k m1 with Some v1 -> v1 <= v2 | None -> false)
          m2
      in
      P.subset_by ( <= ) p1 p2 = expected)

let test_sharing_shortcut () =
  (* union of a map with itself must return it physically *)
  let p = List.fold_left (fun p k -> P.add k k p) P.empty [ 1; 5; 9; 42; 77 ] in
  let u = P.union_idem (fun _ a _ -> a) p p in
  Alcotest.(check bool) "physical identity" true (u == p);
  (* union with a one-cell change shares the unchanged subtrees *)
  let p' = P.add 5 99 p in
  let u = P.union_idem (fun _ a b -> max a b) p p' in
  Alcotest.(check (option int)) "updated" (Some 99) (P.find_opt 5 u);
  Alcotest.(check (option int)) "kept" (Some 42) (P.find_opt 42 u)

let test_add_physical_noop () =
  let p = P.add 3 7 (P.add 1 2 P.empty) in
  let v = Option.get (P.find_opt 3 p) in
  ignore v;
  (* re-adding the physically same value returns the same tree *)
  let q = P.add 3 7 p in
  Alcotest.(check bool) "no-op add" true (P.equal_by ( = ) p q)

let test_bindings_complete () =
  let p = build_both [ (3, 1); (1, 2); (8, 3) ] |> fst in
  Alcotest.(check int) "cardinal" 3 (P.cardinal p);
  Alcotest.(check int) "fold" 3 (P.fold (fun _ _ n -> n + 1) p 0)

let test_filter_map () =
  let p = build_both [ (1, 1); (2, 2); (3, 3); (4, 4) ] |> fst in
  let q = P.filter_map (fun _ v -> if v mod 2 = 0 then Some (v * 10) else None) p in
  Alcotest.(check int) "card" 2 (P.cardinal q);
  Alcotest.(check (option int)) "kept" (Some 20) (P.find_opt 2 q);
  Alcotest.(check (option int)) "dropped" None (P.find_opt 1 q)

let suite =
  [
    Alcotest.test_case "sharing short-cut" `Quick test_sharing_shortcut;
    Alcotest.test_case "physical no-op add" `Quick test_add_physical_noop;
    Alcotest.test_case "bindings" `Quick test_bindings_complete;
    Alcotest.test_case "filter_map" `Quick test_filter_map;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_model_find; prop_model_remove; prop_union_model;
        prop_inter_model; prop_subset;
      ]
