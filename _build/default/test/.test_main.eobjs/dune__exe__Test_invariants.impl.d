test/test_invariants.ml: Alcotest Astree_core Astree_gen Filename Lazy String Sys Unix
