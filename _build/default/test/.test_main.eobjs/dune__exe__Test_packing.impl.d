test/test_packing.ml: Alcotest Array Astree_core Astree_domains Astree_frontend List
