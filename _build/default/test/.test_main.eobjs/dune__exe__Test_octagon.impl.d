test/test_octagon.ml: Alcotest Astree_domains Astree_frontend Float QCheck QCheck_alcotest
