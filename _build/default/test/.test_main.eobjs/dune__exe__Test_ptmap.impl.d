test/test_ptmap.ml: Alcotest Astree_core Fmt Int List Map Option QCheck QCheck_alcotest String
