test/test_gen.ml: Alcotest Astree_core Astree_frontend Astree_gen List Printexc
