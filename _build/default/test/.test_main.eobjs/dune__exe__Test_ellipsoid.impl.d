test/test_ellipsoid.ml: Alcotest Astree_domains Astree_frontend Float QCheck QCheck_alcotest
