test/test_samples.ml: Alcotest Astree_core Astree_frontend Filename Float List String Sys
