test/test_env.ml: Alcotest Astree_core Astree_domains Fmt List QCheck QCheck_alcotest String
