test/test_lattice.ml: Array Astree_domains Astree_frontend Float Fmt List QCheck QCheck_alcotest
