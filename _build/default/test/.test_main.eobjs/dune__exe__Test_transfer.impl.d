test/test_transfer.ml: Alcotest Astree_core Astree_domains
