test/test_soundness.ml: Astree_core Astree_domains Astree_frontend Astree_gen Float Hashtbl List QCheck QCheck_alcotest
