test/test_semantics.ml: Alcotest Astree_core Astree_frontend
