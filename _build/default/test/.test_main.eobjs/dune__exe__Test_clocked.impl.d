test/test_clocked.ml: Alcotest Astree_domains
