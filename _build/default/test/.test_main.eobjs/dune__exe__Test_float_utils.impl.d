test/test_float_utils.ml: Alcotest Astree_domains Float List QCheck QCheck_alcotest
