test/test_analysis.ml: Alcotest Astree_core Astree_domains Float Hashtbl List
