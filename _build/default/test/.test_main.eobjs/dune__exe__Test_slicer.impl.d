test/test_slicer.ml: Alcotest Array Astree_core Astree_frontend Astree_slicer List
