test/test_linform.ml: Alcotest Astree_domains Astree_frontend Int32 QCheck QCheck_alcotest
