test/test_itv.ml: Alcotest Astree_domains Float Fmt List QCheck QCheck_alcotest
