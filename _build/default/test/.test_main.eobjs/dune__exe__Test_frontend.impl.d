test/test_frontend.ml: Alcotest Astree_core Astree_frontend Float Gen List QCheck QCheck_alcotest String
