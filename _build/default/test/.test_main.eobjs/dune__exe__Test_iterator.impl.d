test/test_iterator.ml: Alcotest Astree_core Astree_frontend
