test/test_dtree.ml: Alcotest Astree_domains Astree_frontend Option
