(* The checked-in sample programs of examples/data, analyzed through the
   on-disk pipeline (files, partition markers, CLI-level config). *)

module C = Astree_core
module F = Astree_frontend

let data_dir =
  (* tests run from the dune sandbox; locate the repository root by
     walking up until examples/data is found *)
  let rec find dir depth =
    let cand = Filename.concat dir "examples/data" in
    if Sys.file_exists cand then Some cand
    else if depth = 0 then None
    else find (Filename.dirname dir) (depth - 1)
  in
  find (Sys.getcwd ()) 6

let read path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let with_sample name f =
  match data_dir with
  | None -> Alcotest.skip ()
  | Some dir ->
      let path = Filename.concat dir name in
      if not (Sys.file_exists path) then Alcotest.skip () else f (read path)

(* honor the astree-partition marker like bin/astree does *)
let config_for src =
  let marker = "astree-partition:" in
  let cfg = C.Config.default in
  match
    let n = String.length src and m = String.length marker in
    let rec go i = if i + m > n then None
      else if String.sub src i m = marker then Some (i + m) else go (i + 1)
    in
    go 0
  with
  | None -> cfg
  | Some start ->
      let stop =
        match String.index_from_opt src start '*' with
        | Some k -> k
        | None -> String.length src
      in
      let fns =
        String.sub src start (stop - start)
        |> String.trim |> String.split_on_char ' '
        |> List.filter (fun s -> s <> "")
      in
      { cfg with C.Config.partitioned_functions = fns }

let test_mini_fbw () =
  with_sample "mini_fbw.c" (fun src ->
      let r = C.Analysis.analyze_string ~cfg:(config_for src) src in
      Alcotest.(check int) "verified" 0 (C.Analysis.n_alarms r);
      Alcotest.(check bool) "uses all three relational domains" true
        (r.C.Analysis.r_stats.C.Analysis.s_oct_packs > 0
        && r.C.Analysis.r_stats.C.Analysis.s_ell_packs > 0
        && r.C.Analysis.r_stats.C.Analysis.s_dt_packs > 0))

let test_filter_bank () =
  with_sample "filter_bank.c" (fun src ->
      let r = C.Analysis.analyze_string src in
      Alcotest.(check int) "cascade verified" 0 (C.Analysis.n_alarms r))

let test_buggy_demo () =
  with_sample "buggy_demo.c" (fun src ->
      let r = C.Analysis.analyze_string src in
      let kinds =
        List.map (fun (a : C.Alarm.t) -> a.C.Alarm.a_kind) r.C.Analysis.r_alarms
      in
      Alcotest.(check bool) "oob found" true
        (List.mem C.Alarm.Out_of_bounds kinds);
      Alcotest.(check bool) "div found" true
        (List.mem C.Alarm.Div_by_zero kinds);
      Alcotest.(check bool) "overflow found" true
        (List.mem C.Alarm.Int_overflow kinds))

let test_buggy_demo_concrete_agreement () =
  (* the concrete interpreter hits (at least) the same defects under
     adversarial inputs *)
  with_sample "buggy_demo.c" (fun src ->
      let ast = F.Parser.parse_string ~file:"buggy_demo.c" src in
      let p = F.Typecheck.elab_program ast in
      let hit = ref false in
      for seed = 1 to 10 do
        let state = ref seed in
        let input (spec : F.Tast.input_spec) =
          state := ((!state * 48271) + 11) land 0xFFFFFF;
          let u = float_of_int !state /. 16777216.0 in
          Float.round
            (spec.F.Tast.in_lo +. (u *. (spec.F.Tast.in_hi -. spec.F.Tast.in_lo)))
        in
        match F.Interp.run ~max_ticks:100 ~input p with
        | F.Interp.Error _ -> hit := true
        | F.Interp.Finished -> ()
      done;
      Alcotest.(check bool) "concretely reachable" true !hit)

let suite =
  [
    Alcotest.test_case "mini_fbw verifies" `Quick test_mini_fbw;
    Alcotest.test_case "filter_bank verifies" `Quick test_filter_bank;
    Alcotest.test_case "buggy_demo alarms" `Quick test_buggy_demo;
    Alcotest.test_case "buggy_demo concrete" `Quick test_buggy_demo_concrete_agreement;
  ]
