(* Directed-rounding soundness (Sect. 6.2.1: "always perform rounding in
   the right direction"). *)

module FU = Astree_domains.Float_utils

let test_fsucc_fpred () =
  Alcotest.(check bool) "succ above" true (FU.fsucc 1.0 > 1.0);
  Alcotest.(check bool) "pred below" true (FU.fpred 1.0 < 1.0);
  Alcotest.(check bool) "succ of 0" true (FU.fsucc 0.0 > 0.0);
  Alcotest.(check bool) "succ -1" true (FU.fsucc (-1.0) > -1.0);
  Alcotest.(check bool) "inf fixpoint" true (FU.fsucc Float.infinity = Float.infinity);
  Alcotest.(check bool) "adjacent" true (FU.fpred (FU.fsucc 1.0) = 1.0)

let test_exactness () =
  (* compensated rounding keeps exact operations exact *)
  Alcotest.(check (float 0.)) "1+2" 3.0 (FU.add_up 1.0 2.0);
  Alcotest.(check (float 0.)) "1+2 down" 3.0 (FU.add_down 1.0 2.0);
  Alcotest.(check (float 0.)) "x+0" 5.5 (FU.add_up 5.5 0.0);
  Alcotest.(check (float 0.)) "2*3" 6.0 (FU.mul_up 2.0 3.0);
  Alcotest.(check (float 0.)) "1/4" 0.25 (FU.div_up 1.0 4.0);
  Alcotest.(check (float 0.)) "sqrt 4" 2.0 (FU.sqrt_up 4.0)

let test_directedness () =
  (* 1.0 + 1e-17 is inexact (absorbed): bounds must strictly bracket *)
  let lo = FU.add_down 1.0 1e-17 and hi = FU.add_up 1.0 1e-17 in
  Alcotest.(check bool) "bracket" true (lo < hi);
  Alcotest.(check bool) "contains exact" true (lo <= 1.0 && hi >= 1.0 && hi <= 1.0 +. 1e-15);
  (* 0.1 * 0.1 is inexact *)
  let lo = FU.mul_down 0.1 0.1 and hi = FU.mul_up 0.1 0.1 in
  Alcotest.(check bool) "mul bracket" true (lo <= 0.1 *. 0.1 && 0.1 *. 0.1 <= hi && lo < hi)

let test_overflow_edges () =
  Alcotest.(check bool) "overflow up" true
    (FU.add_up max_float max_float = Float.infinity);
  (* downward rounding of an overflowed positive result may stop at
     max_float *)
  Alcotest.(check bool) "overflow down finite" true
    (FU.add_down max_float max_float <= Float.infinity);
  Alcotest.(check bool) "neg overflow down" true
    (FU.add_down (-.max_float) (-.max_float) = Float.neg_infinity)

let test_zero_aware_mul () =
  Alcotest.(check (float 0.)) "0 * inf" 0.0 (FU.mul_up 0.0 Float.infinity);
  Alcotest.(check (float 0.)) "inf * 0" 0.0 (FU.mul_down Float.infinity 0.0)

let test_single_bounds () =
  let x = 0.1 in
  let lo, hi = FU.single_bounds x in
  Alcotest.(check bool) "bracket" true (lo <= x && x <= hi);
  Alcotest.(check bool) "are singles" true
    (FU.to_single lo = lo && FU.to_single hi = hi)

let test_ulp () =
  Alcotest.(check (float 0.)) "ulp 1.0" epsilon_float (FU.ulp 1.0)

let prop_add_bracket =
  QCheck.Test.make ~name:"add_down <= exact <= add_up"
    QCheck.(pair (float_range (-1e10) 1e10) (float_range (-1e10) 1e10))
    (fun (a, b) ->
      let lo = FU.add_down a b and hi = FU.add_up a b in
      (* the exact sum lies within one ulp of the rounded sum *)
      lo <= a +. b && a +. b <= hi)

let prop_mul_bracket =
  QCheck.Test.make ~name:"mul_down <= round(a*b) <= mul_up"
    QCheck.(pair (float_range (-1e5) 1e5) (float_range (-1e5) 1e5))
    (fun (a, b) ->
      FU.mul_down a b <= a *. b && a *. b <= FU.mul_up a b)

let prop_div_bracket =
  QCheck.Test.make ~name:"div_down <= round(a/b) <= div_up"
    QCheck.(pair (float_range (-1e5) 1e5) (float_range 0.001 1e5))
    (fun (a, b) -> FU.div_down a b <= a /. b && a /. b <= FU.div_up a b)

let prop_sqrt_bracket =
  QCheck.Test.make ~name:"sqrt bracket" (QCheck.float_range 0.0 1e10)
    (fun a -> FU.sqrt_down a <= sqrt a && sqrt a <= FU.sqrt_up a)

let prop_sat_add =
  QCheck.Test.make ~name:"saturating add over/underflow safe"
    QCheck.(pair int int)
    (fun (a, b) ->
      let a = if a = min_int then min_int + 1 else a in
      let b = if b = min_int then min_int + 1 else b in
      let r = FU.Sat.add a b in
      (* never wraps: sign is consistent *)
      if a > 0 && b > 0 then r > 0 else if a < 0 && b < 0 then r < 0 else true)

let suite =
  [
    Alcotest.test_case "fsucc/fpred" `Quick test_fsucc_fpred;
    Alcotest.test_case "exact ops stay exact" `Quick test_exactness;
    Alcotest.test_case "directed rounding" `Quick test_directedness;
    Alcotest.test_case "overflow edges" `Quick test_overflow_edges;
    Alcotest.test_case "zero-aware mul" `Quick test_zero_aware_mul;
    Alcotest.test_case "single bounds" `Quick test_single_bounds;
    Alcotest.test_case "ulp" `Quick test_ulp;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_add_bracket; prop_mul_bracket; prop_div_bracket;
        prop_sqrt_bracket; prop_sat_add;
      ]
