(* Unit and property tests for the interval domain (Sect. 6.2.1). *)

module D = Astree_domains
module I = D.Itv

let check_itv = Alcotest.testable I.pp I.equal

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)
(* ------------------------------------------------------------------ *)

let test_join_int () =
  Alcotest.check check_itv "join" (I.int_range 0 10)
    (I.join (I.int_range 0 5) (I.int_range 3 10))

let test_meet_int () =
  Alcotest.check check_itv "meet" (I.int_range 3 5)
    (I.meet (I.int_range 0 5) (I.int_range 3 10));
  Alcotest.check check_itv "empty meet" I.Bot
    (I.meet (I.int_range 0 2) (I.int_range 5 10))

let test_add_int () =
  Alcotest.check check_itv "add" (I.int_range 3 30)
    (I.add (I.int_range 1 10) (I.int_range 2 20))

let test_add_saturates () =
  match I.add (I.int_range 0 max_int) (I.int_range 0 max_int) with
  | I.Int (0, hi) -> Alcotest.(check bool) "saturated" true (hi = max_int)
  | i -> Alcotest.failf "unexpected %a" I.pp i

let test_mul_int_signs () =
  Alcotest.check check_itv "mul" (I.int_range (-20) 20)
    (I.mul (I.int_range (-2) 2) (I.int_range (-10) 10));
  Alcotest.check check_itv "mul neg" (I.int_range (-6) 12)
    (I.mul (I.int_range (-2) 1) (I.int_range (-6) 3))

let test_div_int () =
  Alcotest.check check_itv "div pos" (I.int_range 2 10)
    (I.div (I.int_range 20 50) (I.int_range 5 10));
  (* divisor spanning zero: both signed quotients *)
  Alcotest.check check_itv "div span" (I.int_range (-50) 50)
    (I.div (I.int_range 20 50) (I.int_range (-1) 1))

let test_div_float_pos () =
  match I.div (I.float_range 1.0 4.0) (I.float_range 2.0 2.0) with
  | I.Float (lo, hi) ->
      Alcotest.(check bool) "lo" true (lo <= 0.5 && lo >= 0.49);
      Alcotest.(check bool) "hi" true (hi >= 2.0 && hi <= 2.01)
  | i -> Alcotest.failf "unexpected %a" I.pp i

let test_div_float_span () =
  (* dividing by a range touching zero is unbounded *)
  match I.div (I.float_range 1.0 2.0) (I.float_range 0.0 1.0) with
  | I.Float (lo, hi) ->
      Alcotest.(check bool) "lo finite" true (lo >= 0.99);
      Alcotest.(check bool) "hi inf" true (hi = Float.infinity)
  | i -> Alcotest.failf "unexpected %a" I.pp i

let test_rem () =
  Alcotest.check check_itv "rem" (I.int_range 0 4)
    (I.rem (I.int_range 0 100) (I.int_range 5 5));
  Alcotest.check check_itv "rem neg dividend" (I.int_range (-4) 4)
    (I.rem (I.int_range (-100) 100) (I.int_range 5 5));
  (* dividend smaller than divisor: tightened by the dividend *)
  Alcotest.check check_itv "rem small" (I.int_range 0 3)
    (I.rem (I.int_range 0 3) (I.int_range 10 10))

let test_neg () =
  Alcotest.check check_itv "neg" (I.int_range (-10) (-1))
    (I.neg (I.int_range 1 10))

let test_abs () =
  Alcotest.check check_itv "abs span" (I.int_range 0 10)
    (I.abs (I.int_range (-10) 5));
  Alcotest.check check_itv "abs neg" (I.int_range 1 10)
    (I.abs (I.int_range (-10) (-1)))

let test_float_add_rounds_out () =
  match I.add (I.float_range 0.1 0.2) (I.float_range 0.3 0.4) with
  | I.Float (lo, hi) ->
      Alcotest.(check bool) "lo sound" true (lo <= 0.1 +. 0.3);
      Alcotest.(check bool) "hi sound" true (hi >= 0.2 +. 0.4)
  | i -> Alcotest.failf "unexpected %a" I.pp i

let test_exact_float_ops_stay_exact () =
  (* 1.0 + 2.0 is exact: the compensated rounding must not widen it *)
  Alcotest.check check_itv "exact add" (I.float_range 3.0 3.0)
    (I.add (I.float_const 1.0) (I.float_const 2.0));
  Alcotest.check check_itv "exact mul" (I.float_const 6.0)
    (I.mul (I.float_const 2.0) (I.float_const 3.0))

let test_widen_thresholds () =
  let t = D.Thresholds.of_list [ 10.0; 100.0 ] in
  (match I.widen ~thresholds:t (I.int_range 0 5) (I.int_range 0 7) with
  | I.Int (0, 10) -> ()
  | i -> Alcotest.failf "expected [0,10], got %a" I.pp i);
  (match I.widen ~thresholds:t (I.int_range 0 5) (I.int_range (-3) 200) with
  | I.Int (lo, hi) ->
      Alcotest.(check bool) "lo" true (lo = -10);
      Alcotest.(check bool) "hi" true (hi = max_int)
  | i -> Alcotest.failf "unexpected %a" I.pp i)

let test_widen_stable () =
  let t = D.Thresholds.default in
  let a = I.int_range 0 10 in
  Alcotest.check check_itv "stable" a (I.widen ~thresholds:t a (I.int_range 2 8))

let test_narrow () =
  (* narrowing refines infinite bounds only *)
  let a = I.Int (0, Astree_domains.Float_utils.Sat.pos_inf) in
  Alcotest.check check_itv "narrow" (I.int_range 0 50) (I.narrow a (I.int_range 0 50));
  Alcotest.check check_itv "narrow keeps finite" (I.int_range 0 10)
    (I.narrow (I.int_range 0 10) (I.int_range 2 5))

let test_refinements () =
  Alcotest.check check_itv "lt" (I.int_range 0 4)
    (I.refine_lt (I.int_range 0 10) (I.int_range 5 5));
  Alcotest.check check_itv "ge" (I.int_range 5 10)
    (I.refine_ge (I.int_range 0 10) (I.int_range 5 7));
  Alcotest.check check_itv "ne boundary" (I.int_range 1 10)
    (I.refine_ne (I.int_range 0 10) (I.int_const 0));
  Alcotest.check check_itv "ne interior is identity" (I.int_range 0 10)
    (I.refine_ne (I.int_range 0 10) (I.int_const 5))

let test_exclude_zero () =
  Alcotest.check check_itv "int" (I.int_range 1 10)
    (I.exclude_zero (I.int_range 0 10));
  Alcotest.check check_itv "int neg" (I.int_range (-10) (-1))
    (I.exclude_zero (I.int_range (-10) 0));
  Alcotest.check check_itv "singleton zero" I.Bot
    (I.exclude_zero (I.int_const 0))

let test_conversions () =
  (match I.int_to_float (I.int_range (-3) 7) with
  | I.Float (lo, hi) ->
      Alcotest.(check bool) "bounds" true (lo <= -3.0 && hi >= 7.0)
  | i -> Alcotest.failf "unexpected %a" I.pp i);
  Alcotest.check check_itv "trunc" (I.int_range (-1) 2)
    (I.float_to_int (I.float_range (-1.9) 2.9))

let test_to_single () =
  match I.to_single (I.float_range 0.1 0.2) with
  | I.Float (lo, hi) ->
      Alcotest.(check bool) "sound" true (lo <= 0.1 && hi >= 0.2)
  | i -> Alcotest.failf "unexpected %a" I.pp i

let test_shifts () =
  Alcotest.check check_itv "shl" (I.int_range 4 40)
    (I.shl (I.int_range 1 10) (I.int_const 2));
  Alcotest.check check_itv "shr" (I.int_range 1 25)
    (I.shr (I.int_range 4 100) (I.int_const 2))

let test_bitops_singleton () =
  Alcotest.check check_itv "band" (I.int_const (12 land 10))
    (I.band (I.int_const 12) (I.int_const 10));
  Alcotest.check check_itv "bxor" (I.int_const (12 lxor 10))
    (I.bxor (I.int_const 12) (I.int_const 10))

let test_bitops_range () =
  (* non-negative ranges stay within the enclosing power of two *)
  match I.bor (I.int_range 0 12) (I.int_range 0 5) with
  | I.Int (0, hi) -> Alcotest.(check bool) "bound" true (hi >= 13 && hi <= 15)
  | i -> Alcotest.failf "unexpected %a" I.pp i

(* ------------------------------------------------------------------ *)
(* Property tests                                                      *)
(* ------------------------------------------------------------------ *)

let small_int = QCheck.Gen.int_range (-1000) 1000

let gen_int_itv : I.t QCheck.Gen.t =
  QCheck.Gen.(
    small_int >>= fun a ->
    small_int >>= fun b -> return (I.int_range (min a b) (max a b)))

let gen_float_itv : I.t QCheck.Gen.t =
  QCheck.Gen.(
    float_range (-1000.) 1000. >>= fun a ->
    float_range (-1000.) 1000. >>= fun b ->
    return (I.float_range (Float.min a b) (Float.max a b)))

let arb_int_itv = QCheck.make ~print:(Fmt.str "%a" I.pp) gen_int_itv
let arb_float_itv = QCheck.make ~print:(Fmt.str "%a" I.pp) gen_float_itv

let contains (i : I.t) (x : float) : bool =
  match i with
  | I.Bot -> false
  | I.Int (lo, hi) ->
      Float.is_integer x && float_of_int lo <= x && x <= float_of_int hi
  | I.Float (lo, hi) -> lo <= x && x <= hi

let mem_int (i : I.t) (x : int) : bool =
  match i with I.Int (lo, hi) -> lo <= x && x <= hi | _ -> false

let prop_join_sound =
  QCheck.Test.make ~name:"join is an upper bound"
    (QCheck.pair arb_int_itv arb_int_itv) (fun (a, b) ->
      I.subset a (I.join a b) && I.subset b (I.join a b))

let prop_meet_sound =
  QCheck.Test.make ~name:"meet is a lower bound"
    (QCheck.pair arb_int_itv arb_int_itv) (fun (a, b) ->
      I.subset (I.meet a b) a && I.subset (I.meet a b) b)

let prop_add_sound =
  QCheck.Test.make ~name:"int add contains pointwise sums"
    QCheck.(
      pair (pair arb_int_itv arb_int_itv)
        (pair (int_range (-1000) 1000) (int_range (-1000) 1000)))
    (fun ((a, b), (x, y)) ->
      QCheck.assume (mem_int a x && mem_int b y);
      mem_int (I.add a b) (x + y))

let prop_mul_sound =
  QCheck.Test.make ~name:"int mul contains pointwise products"
    QCheck.(
      pair (pair arb_int_itv arb_int_itv)
        (pair (int_range (-1000) 1000) (int_range (-1000) 1000)))
    (fun ((a, b), (x, y)) ->
      QCheck.assume (mem_int a x && mem_int b y);
      mem_int (I.mul a b) (x * y))

let prop_float_add_sound =
  QCheck.Test.make ~name:"float add is outward"
    QCheck.(
      pair (pair arb_float_itv arb_float_itv)
        (pair (float_range (-1000.) 1000.) (float_range (-1000.) 1000.)))
    (fun ((a, b), (x, y)) ->
      QCheck.assume (contains a x && contains b y);
      contains (I.add a b) (x +. y))

let prop_float_mul_sound =
  QCheck.Test.make ~name:"float mul is outward"
    QCheck.(
      pair (pair arb_float_itv arb_float_itv)
        (pair (float_range (-100.) 100.) (float_range (-100.) 100.)))
    (fun ((a, b), (x, y)) ->
      QCheck.assume (contains a x && contains b y);
      contains (I.mul a b) (x *. y))

let prop_widen_upper =
  QCheck.Test.make ~name:"widening is an upper bound of both sides"
    (QCheck.pair arb_int_itv arb_int_itv) (fun (a, b) ->
      let w = I.widen ~thresholds:D.Thresholds.default a b in
      I.subset a w && I.subset b w)

let prop_widen_terminates =
  QCheck.Test.make ~name:"iterated widening reaches a fixpoint quickly"
    (QCheck.pair arb_int_itv arb_int_itv) (fun (a, step) ->
      let t = D.Thresholds.default in
      let rec go n cur =
        if n > 2 * D.Thresholds.size t then false
        else
          let next = I.widen ~thresholds:t cur (I.add cur step) in
          if I.equal next cur then true else go (n + 1) next
      in
      go 0 a)

let prop_narrow_between =
  QCheck.Test.make ~name:"narrowing refines only infinite bounds"
    (QCheck.pair arb_int_itv arb_int_itv) (fun (a, b) ->
      (* if a is finite, narrowing is the identity *)
      I.equal (I.narrow a b) a)

let unit_tests =
  [
    Alcotest.test_case "join int" `Quick test_join_int;
    Alcotest.test_case "meet int" `Quick test_meet_int;
    Alcotest.test_case "add int" `Quick test_add_int;
    Alcotest.test_case "add saturation" `Quick test_add_saturates;
    Alcotest.test_case "mul signs" `Quick test_mul_int_signs;
    Alcotest.test_case "div int" `Quick test_div_int;
    Alcotest.test_case "div float positive" `Quick test_div_float_pos;
    Alcotest.test_case "div float spanning zero" `Quick test_div_float_span;
    Alcotest.test_case "rem" `Quick test_rem;
    Alcotest.test_case "neg" `Quick test_neg;
    Alcotest.test_case "abs" `Quick test_abs;
    Alcotest.test_case "float add rounds outward" `Quick test_float_add_rounds_out;
    Alcotest.test_case "exact float ops stay exact" `Quick test_exact_float_ops_stay_exact;
    Alcotest.test_case "widen with thresholds" `Quick test_widen_thresholds;
    Alcotest.test_case "widen stable" `Quick test_widen_stable;
    Alcotest.test_case "narrow" `Quick test_narrow;
    Alcotest.test_case "guard refinements" `Quick test_refinements;
    Alcotest.test_case "exclude zero" `Quick test_exclude_zero;
    Alcotest.test_case "conversions" `Quick test_conversions;
    Alcotest.test_case "to_single" `Quick test_to_single;
    Alcotest.test_case "shifts" `Quick test_shifts;
    Alcotest.test_case "bitops singleton" `Quick test_bitops_singleton;
    Alcotest.test_case "bitops range" `Quick test_bitops_range;
  ]

let prop_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_join_sound;
      prop_meet_sound;
      prop_add_sound;
      prop_mul_sound;
      prop_float_add_sound;
      prop_float_mul_sound;
      prop_widen_upper;
      prop_widen_terminates;
      prop_narrow_between;
    ]

let suite = unit_tests @ prop_tests
