(* Slicer tests (Sect. 3.3). *)

module F = Astree_frontend
module S = Astree_slicer
module C = Astree_core

let compile src =
  let ast = F.Parser.parse_string ~file:"<t>" src in
  F.Typecheck.elab_program ast

let src =
  {|
volatile int raw;
int a;
int b;
int c;
int unrelated;
int main(void) {
  __astree_input_range(raw, 0.0, 10.0);
  while (1) {
    int x;
    x = raw;
    a = x + 1;
    unrelated = 42;
    b = a * 2;
    if (b > 10) {
      c = 100 / (x - 5);
    }
    __astree_wait_for_clock();
  }
  return 0;
}
|}

(* find the division statement's location through the analyzer's alarm *)
let alarm_loc () =
  let r = C.Analysis.analyze_string src in
  match
    List.find_opt
      (fun (al : C.Alarm.t) -> al.C.Alarm.a_kind = C.Alarm.Div_by_zero)
      r.C.Analysis.r_alarms
  with
  | Some al -> al.C.Alarm.a_loc
  | None -> Alcotest.fail "expected a division alarm"

(* the statement location containing a given expression location *)
let stmt_loc_of_line (g : S.Depgraph.t) line =
  let found = ref None in
  Array.iter
    (fun (n : S.Depgraph.node) ->
      if n.S.Depgraph.n_stmt.F.Tast.sloc.F.Loc.line = line then
        found := Some n.S.Depgraph.n_stmt.F.Tast.sloc)
    g.S.Depgraph.nodes;
  !found

let slice_stmts () =
  let p = compile src in
  let g = S.Depgraph.build p in
  let aloc = alarm_loc () in
  (* the alarm location is inside the assignment statement on line 17 *)
  let crit_loc =
    match stmt_loc_of_line g aloc.F.Loc.line with
    | Some l -> l
    | None -> aloc
  in
  let sl = S.Slicer.slice g { S.Slicer.c_loc = crit_loc; c_vars = None } in
  (p, g, sl)

let test_slice_contains_dependencies () =
  let _, _, sl = slice_stmts () in
  let lines =
    List.map (fun (n : S.Depgraph.node) -> n.S.Depgraph.n_stmt.F.Tast.sloc.F.Loc.line) sl.S.Slicer.s_nodes
  in
  (* x = raw (line 11), a = x+1 (12), b = a*2 (14), if (15), division (16) *)
  Alcotest.(check bool) "x def" true (List.mem 11 lines);
  Alcotest.(check bool) "a def" true (List.mem 12 lines);
  Alcotest.(check bool) "b def" true (List.mem 14 lines);
  Alcotest.(check bool) "control" true (List.mem 15 lines)

let test_slice_excludes_unrelated () =
  let _, _, sl = slice_stmts () in
  let lines =
    List.map (fun (n : S.Depgraph.node) -> n.S.Depgraph.n_stmt.F.Tast.sloc.F.Loc.line) sl.S.Slicer.s_nodes
  in
  Alcotest.(check bool) "unrelated excluded" false (List.mem 13 lines)

let test_abstract_slice_smaller () =
  let p = compile src in
  let g = S.Depgraph.build p in
  let aloc = alarm_loc () in
  let crit_loc =
    match stmt_loc_of_line g aloc.F.Loc.line with Some l -> l | None -> aloc
  in
  let crit = { S.Slicer.c_loc = crit_loc; c_vars = None } in
  let full = S.Slicer.slice g crit in
  (* abstract slice following only x (the variable we lack information
     about): a and b drop out *)
  let interesting (v : F.Tast.var) = v.F.Tast.v_orig = "x" || v.F.Tast.v_orig = "raw" in
  let abs = S.Slicer.abstract_slice g ~interesting crit in
  Alcotest.(check bool) "smaller" true
    (S.Slicer.slice_size abs <= S.Slicer.slice_size full);
  let lines =
    List.map (fun (n : S.Depgraph.node) -> n.S.Depgraph.n_stmt.F.Tast.sloc.F.Loc.line) abs.S.Slicer.s_nodes
  in
  Alcotest.(check bool) "keeps x def" true (List.mem 11 lines);
  Alcotest.(check bool) "drops a def" false (List.mem 12 lines)

let test_graph_size () =
  let p = compile src in
  let g = S.Depgraph.build p in
  Alcotest.(check bool) "nodes" true (S.Depgraph.size g > 5)

let test_defs_and_uses () =
  let p = compile src in
  let g = S.Depgraph.build p in
  (* some node defines a and uses x *)
  let found = ref false in
  Array.iter
    (fun (n : S.Depgraph.node) ->
      let defs = F.Tast.VarSet.elements n.S.Depgraph.n_defs in
      let uses = F.Tast.VarSet.elements n.S.Depgraph.n_uses in
      if
        List.exists (fun (v : F.Tast.var) -> v.F.Tast.v_orig = "a") defs
        && List.exists (fun (v : F.Tast.var) -> v.F.Tast.v_orig = "x") uses
      then found := true)
    g.S.Depgraph.nodes;
  Alcotest.(check bool) "def/use" true !found

let suite =
  [
    Alcotest.test_case "slice contains dependencies" `Quick test_slice_contains_dependencies;
    Alcotest.test_case "slice excludes unrelated" `Quick test_slice_excludes_unrelated;
    Alcotest.test_case "abstract slice is smaller" `Quick test_abstract_slice_smaller;
    Alcotest.test_case "graph size" `Quick test_graph_size;
    Alcotest.test_case "defs and uses" `Quick test_defs_and_uses;
  ]
