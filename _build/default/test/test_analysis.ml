(* End-to-end analyzer tests: each refinement of the paper eliminates the
   false alarms of its target idiom, true errors are always reported, and
   the iteration-strategy parameters behave as Sect. 7.1 describes. *)

module C = Astree_core
module D = Astree_domains

let alarms ?(cfg = C.Config.default) src =
  C.Analysis.n_alarms (C.Analysis.analyze_string ~cfg src)

let no_oct = { C.Config.default with C.Config.use_octagons = false }
let no_ell = { C.Config.default with C.Config.use_ellipsoids = false }
let no_dt = { C.Config.default with C.Config.use_decision_trees = false }
(* the octagon transfer functions are built on linear forms by
   construction (Sect. 6.2.2), so the linearization ablation is only
   meaningful with octagons off, as in the E2 ladder *)
let no_lin =
  {
    C.Config.default with
    C.Config.use_linearization = false;
    use_octagons = false;
  }
let no_clock = { C.Config.default with C.Config.use_clocked = false }

let no_thresholds =
  {
    C.Config.default with
    C.Config.widening_thresholds = D.Thresholds.none;
    delay_widening = 0;
  }

(* ------------------------------------------------------------------ *)
(* The four paper idioms                                               *)
(* ------------------------------------------------------------------ *)

let counter_src =
  {|
volatile _Bool ev;
int cnt;
int main(void) {
  __astree_input_range(ev, 0.0, 1.0);
  cnt = 0;
  while (1) {
    if (ev) { cnt = cnt + 1; }
    __astree_wait_for_clock();
  }
  return 0;
}
|}

let test_counter_clocked () =
  Alcotest.(check int) "clocked proves it" 0 (alarms counter_src);
  Alcotest.(check bool) "without the clocked domain it alarms" true
    (alarms ~cfg:no_clock counter_src > 0)

let limiter_src =
  {|
volatile float xin;
volatile float vmax;
float Z; float L;
short actuator;
int main(void) {
  __astree_input_range(xin, -100.0, 100.0);
  __astree_input_range(vmax, 0.0, 5.0);
  Z = 0.0f; L = 0.0f; actuator = 0;
  while (1) {
    float R; float x; float v;
    x = xin; v = vmax;
    R = x - Z;
    L = x;
    if (R > v) { L = Z + v; }
    Z = L;
    actuator = (short)(L * 10.0f);
    __astree_wait_for_clock();
  }
  return 0;
}
|}

let test_limiter_octagons () =
  Alcotest.(check int) "octagons prove it" 0 (alarms limiter_src);
  Alcotest.(check bool) "without octagons it alarms" true
    (alarms ~cfg:no_oct limiter_src > 0)

let filter_src =
  {|
volatile float fin;
volatile _Bool rst;
float X; float Y;
int main(void) {
  __astree_input_range(fin, -1.0, 1.0);
  __astree_input_range(rst, 0.0, 1.0);
  X = 0.0f; Y = 0.0f;
  while (1) {
    float t;
    t = fin;
    if (rst) { Y = t; X = t; }
    else { float X2; X2 = 1.5f * X - 0.7f * Y + t; Y = X; X = X2; }
    __astree_wait_for_clock();
  }
  return 0;
}
|}

let test_filter_ellipsoids () =
  Alcotest.(check int) "ellipsoids prove it" 0 (alarms filter_src);
  Alcotest.(check bool) "without ellipsoids it alarms" true
    (alarms ~cfg:no_ell filter_src > 0)

let relay_src =
  {|
volatile int raw;
_Bool bz;
float y;
int main(void) {
  __astree_input_range(raw, 0.0, 100.0);
  y = 0.0f;
  while (1) {
    int x;
    x = raw;
    bz = (x == 0);
    if (!bz) { y = 1.0f / (float)x; }
    __astree_wait_for_clock();
  }
  return 0;
}
|}

let test_relay_decision_trees () =
  Alcotest.(check int) "decision trees prove it" 0 (alarms relay_src);
  Alcotest.(check bool) "without decision trees it alarms" true
    (alarms ~cfg:no_dt relay_src > 0)

let decay_src =
  {|
volatile float u;
float x;
short xo;
int main(void) {
  __astree_input_range(u, -1.0, 1.0);
  x = 0.0f; xo = 0;
  while (1) {
    x = x + u;
    x = x - 0.25f * x;
    xo = (short)(x * 100.0f);
    __astree_wait_for_clock();
  }
  return 0;
}
|}

let test_decay_linearization () =
  Alcotest.(check int) "linearization proves it" 0 (alarms decay_src);
  Alcotest.(check bool) "without linearization it alarms" true
    (alarms ~cfg:no_lin decay_src > 0)

let piecewise_src =
  {|
volatile float pin;
float out;
void compute(void) {
  float s; float o; float x;
  x = pin;
  if (x < 0.0f) { s = 2.0f; o = 1.0f; } else { s = -2.0f; o = 3.0f; }
  out = o / s;
}
int main(void) {
  __astree_input_range(pin, -10.0, 10.0);
  out = 0.0f;
  while (1) {
    compute();
    __astree_wait_for_clock();
  }
  return 0;
}
|}

let test_piecewise_partitioning () =
  let part =
    { C.Config.default with C.Config.partitioned_functions = [ "compute" ] }
  in
  Alcotest.(check int) "partitioning proves it" 0 (alarms ~cfg:part piecewise_src);
  Alcotest.(check bool) "without partitioning it alarms" true
    (alarms piecewise_src > 0)

let integrator_src =
  {|
volatile float u;
float x;
int main(void) {
  __astree_input_range(u, -5.0, 5.0);
  x = 0.0f;
  while (1) {
    x = 0.9f * x + u;
    __astree_wait_for_clock();
  }
  return 0;
}
|}

let test_integrator_thresholds () =
  (* bounded by u/(1-alpha) = 50: with thresholds the invariant is a
     small finite interval; without, it escapes to the float range *)
  let r = C.Analysis.analyze_string integrator_src in
  Alcotest.(check int) "no alarms" 0 (C.Analysis.n_alarms r);
  let bound = ref Float.infinity in
  Hashtbl.iter
    (fun _ (inv : C.Astate.t) ->
      C.Env.iter
        (fun cid av ->
          let c = C.Cell.of_id r.C.Analysis.r_actx.C.Transfer.intern cid in
          if C.Cell.to_string c = "x" then
            match C.Avalue.itv av with
            | D.Itv.Float (_, hi) -> bound := hi
            | _ -> ())
        inv.C.Astate.env)
    r.C.Analysis.r_actx.C.Transfer.invariants;
  Alcotest.(check bool) "tight bound" true (!bound <= 1000.0);
  let r' = C.Analysis.analyze_string ~cfg:no_thresholds integrator_src in
  ignore r'
  (* without thresholds the invariant is the whole float range; whether
     that alarms depends on contraction — checked in the ladder tests *)

(* ------------------------------------------------------------------ *)
(* True errors are reported                                            *)
(* ------------------------------------------------------------------ *)

let has_kind k (r : C.Analysis.result) =
  List.exists (fun (a : C.Alarm.t) -> a.C.Alarm.a_kind = k) r.C.Analysis.r_alarms

let test_true_div_by_zero () =
  let src =
    {|
volatile int n;
float y;
int main(void) {
  __astree_input_range(n, 0.0, 10.0);
  while (1) { y = 1.0f / (float)(n - 5); __astree_wait_for_clock(); }
  return 0;
}
|}
  in
  let r = C.Analysis.analyze_string src in
  Alcotest.(check bool) "reported" true (has_kind C.Alarm.Div_by_zero r)

let test_true_oob () =
  let src =
    {|
volatile int i;
float t[4];
float y;
int main(void) {
  __astree_input_range(i, 0.0, 4.0);
  while (1) { y = t[i]; __astree_wait_for_clock(); }
  return 0;
}
|}
  in
  let r = C.Analysis.analyze_string src in
  Alcotest.(check bool) "reported" true (has_kind C.Alarm.Out_of_bounds r)

let test_true_int_overflow () =
  let src =
    {|
int x;
int main(void) {
  x = 1;
  while (1) { x = x * 2; __astree_wait_for_clock(); }
  return 0;
}
|}
  in
  let r = C.Analysis.analyze_string src in
  Alcotest.(check bool) "reported" true (has_kind C.Alarm.Int_overflow r)

let test_assert_checked () =
  let src =
    {|
volatile int n;
int main(void) {
  __astree_input_range(n, 0.0, 10.0);
  while (1) { int x; x = n; __astree_assert(x < 5); __astree_wait_for_clock(); }
  return 0;
}
|}
  in
  let r = C.Analysis.analyze_string src in
  Alcotest.(check bool) "assert alarm" true (has_kind C.Alarm.Assert_failure r)

let test_assume_trusted () =
  let src =
    {|
volatile int n;
float y;
int main(void) {
  __astree_input_range(n, 0.0, 10.0);
  while (1) {
    int x;
    x = n;
    __astree_assume(x > 0);
    y = 1.0f / (float)x;
    __astree_wait_for_clock();
  }
  return 0;
}
|}
  in
  Alcotest.(check int) "assume removes the alarm" 0 (alarms src)

(* ------------------------------------------------------------------ *)
(* Memory-domain behaviours (Sect. 6.1)                                *)
(* ------------------------------------------------------------------ *)

let test_expanded_vs_shrunk_arrays () =
  (* a small array is expanded: per-element precision *)
  let src =
    {|
int t[4];
int main(void) {
  t[0] = 10; t[1] = 20; t[2] = 30; t[3] = 40;
  __astree_assert(t[2] == 30);
  while (1) { __astree_wait_for_clock(); }
  return 0;
}
|}
  in
  Alcotest.(check int) "expanded precise" 0 (alarms src);
  (* with expansion disabled the array shrinks to one cell and the
     element-wise assertion cannot be proved *)
  let cfg = { C.Config.default with C.Config.expand_array_max = 2 } in
  Alcotest.(check bool) "shrunk imprecise" true (alarms ~cfg src > 0)

let test_weak_update_unknown_index () =
  let src =
    {|
volatile int i;
int t[4];
int main(void) {
  __astree_input_range(i, 0.0, 3.0);
  t[0] = 1; t[1] = 1; t[2] = 1; t[3] = 1;
  while (1) {
    int k;
    k = i;
    t[k] = 2;
    /* weak update: t[0] may be 1 or 2, but never anything else */
    __astree_assert(t[0] >= 1);
    __astree_assert(t[0] <= 2);
    __astree_wait_for_clock();
  }
  return 0;
}
|}
  in
  Alcotest.(check int) "weak update" 0 (alarms src)

let test_struct_field_sensitivity () =
  let src =
    {|
struct chan { float val; int ok; };
struct chan c;
int main(void) {
  c.val = 1.5f;
  c.ok = 1;
  __astree_assert(c.ok == 1);
  while (1) { __astree_wait_for_clock(); }
  return 0;
}
|}
  in
  Alcotest.(check int) "field-sensitive" 0 (alarms src)

let test_naive_env_same_result () =
  (* the naive-array environments (E5 ablation) compute the same alarms *)
  let cfg = { C.Config.default with C.Config.naive_environments = true } in
  Alcotest.(check int) "same on limiter" (alarms limiter_src)
    (alarms ~cfg limiter_src);
  Alcotest.(check int) "same on relay" (alarms relay_src) (alarms ~cfg relay_src)

(* ------------------------------------------------------------------ *)
(* Iteration strategies (Sect. 7.1)                                    *)
(* ------------------------------------------------------------------ *)

let test_unrolling_improves_first_iteration () =
  (* first loop iteration differs from the rest: unrolling isolates it *)
  let src =
    {|
int first;
volatile int inp;
int y;
int main(void) {
  __astree_input_range(inp, 1.0, 10.0);
  first = 1;
  y = 1;
  while (1) {
    if (first) { y = 5; first = 0; }
    __astree_assert(y >= 1);
    y = inp;
    __astree_wait_for_clock();
  }
  return 0;
}
|}
  in
  Alcotest.(check int) "with unrolling" 0 (alarms src)

let test_useful_packs_reuse () =
  let r = C.Analysis.analyze_string limiter_src in
  let useful = C.Analysis.useful_octagon_packs r in
  Alcotest.(check bool) "some packs useful" true (useful <> []);
  let cfg =
    { C.Config.default with C.Config.useful_packs_only = Some ("t", useful) }
  in
  (* same precision with only the useful packs (Sect. 7.2.2) *)
  Alcotest.(check int) "same alarms" 0 (alarms ~cfg limiter_src)

let test_volatile_without_spec_is_top () =
  (* a volatile input without a range specification can be anything *)
  let src =
    {|
volatile int n;
int y;
int main(void) {
  while (1) { y = 100 / (n + 1); __astree_wait_for_clock(); }
  return 0;
}
|}
  in
  Alcotest.(check bool) "alarms" true (alarms src > 0)

let suite =
  [
    Alcotest.test_case "counter via clocked domain" `Quick test_counter_clocked;
    Alcotest.test_case "rate limiter via octagons" `Quick test_limiter_octagons;
    Alcotest.test_case "filter via ellipsoids" `Quick test_filter_ellipsoids;
    Alcotest.test_case "relay via decision trees" `Quick test_relay_decision_trees;
    Alcotest.test_case "decay via linearization" `Quick test_decay_linearization;
    Alcotest.test_case "piecewise via partitioning" `Quick test_piecewise_partitioning;
    Alcotest.test_case "integrator via thresholds" `Quick test_integrator_thresholds;
    Alcotest.test_case "true division by zero" `Quick test_true_div_by_zero;
    Alcotest.test_case "true out-of-bounds" `Quick test_true_oob;
    Alcotest.test_case "true overflow" `Quick test_true_int_overflow;
    Alcotest.test_case "assert checked" `Quick test_assert_checked;
    Alcotest.test_case "assume trusted" `Quick test_assume_trusted;
    Alcotest.test_case "expanded vs shrunk arrays" `Quick test_expanded_vs_shrunk_arrays;
    Alcotest.test_case "weak updates" `Quick test_weak_update_unknown_index;
    Alcotest.test_case "struct field sensitivity" `Quick test_struct_field_sensitivity;
    Alcotest.test_case "naive environments agree" `Quick test_naive_env_same_result;
    Alcotest.test_case "loop unrolling" `Quick test_unrolling_improves_first_iteration;
    Alcotest.test_case "useful-pack reuse" `Quick test_useful_packs_reuse;
    Alcotest.test_case "volatile without spec" `Quick test_volatile_without_spec_is_top;
  ]
