(* Transfer-function level tests: guards, assignments, weak/strong
   updates, clock behaviour and alarms, exercised through tiny programs
   with [__astree_assert] probes. *)

module C = Astree_core
module D = Astree_domains

let alarms ?(cfg = C.Config.default) src =
  C.Analysis.n_alarms (C.Analysis.analyze_string ~cfg src)

let proves src = Alcotest.(check int) "proved" 0 (alarms src)
let refutes src = Alcotest.(check bool) "alarmed" true (alarms src > 0)

(* guards ----------------------------------------------------------- *)

let test_guard_comparisons () =
  proves
    {|
volatile int n;
int main(void) {
  __astree_input_range(n, 0.0, 100.0);
  while (1) {
    int x;
    x = n;
    if (x > 10) { __astree_assert(x >= 11); __astree_assert(x <= 100); }
    else { __astree_assert(x <= 10); }
    __astree_wait_for_clock();
  }
  return 0;
}
|}

let test_guard_conjunction () =
  proves
    {|
volatile int n;
int main(void) {
  __astree_input_range(n, 0.0, 100.0);
  while (1) {
    int x;
    x = n;
    if (x > 10 && x < 20) { __astree_assert(x >= 11 && x <= 19); }
    __astree_wait_for_clock();
  }
  return 0;
}
|}

let test_guard_disjunction () =
  proves
    {|
volatile int n;
int main(void) {
  __astree_input_range(n, 0.0, 100.0);
  while (1) {
    int x;
    x = n;
    /* the then-branch is a union of two intervals, not representable:
       only the else-branch refinement is checkable with intervals */
    if (x < 10 || x > 90) { x = 0; }
    else { __astree_assert(x >= 10 && x <= 90); }
    __astree_wait_for_clock();
  }
  return 0;
}
|}

let test_guard_negation () =
  proves
    {|
volatile int n;
int main(void) {
  __astree_input_range(n, 0.0, 100.0);
  while (1) {
    int x;
    x = n;
    if (!(x > 50)) { __astree_assert(x <= 50); }
    __astree_wait_for_clock();
  }
  return 0;
}
|}

let test_guard_equality () =
  proves
    {|
volatile int n;
int main(void) {
  __astree_input_range(n, 0.0, 100.0);
  while (1) {
    int x;
    x = n;
    if (x == 42) { __astree_assert(x >= 42 && x <= 42); }
    __astree_wait_for_clock();
  }
  return 0;
}
|}

let test_unsat_guard_is_dead () =
  (* a contradictory condition makes the branch unreachable: the division
     in it raises no alarm *)
  proves
    {|
volatile int n;
float y;
int main(void) {
  __astree_input_range(n, 0.0, 10.0);
  while (1) {
    int x;
    x = n;
    if (x > 5 && x < 3) { y = 1.0f / 0.0f; }
    __astree_wait_for_clock();
  }
  return 0;
}
|}

(* arithmetic alarms ------------------------------------------------- *)

let test_signed_overflow_boundary () =
  proves
    {|
volatile int n;
int y;
int main(void) {
  __astree_input_range(n, 0.0, 100.0);
  while (1) { y = 2147483547 + n; __astree_wait_for_clock(); }
  return 0;
}
|};
  refutes
    {|
volatile int n;
int y;
int main(void) {
  __astree_input_range(n, 0.0, 101.0);
  while (1) { y = 2147483547 + n; __astree_wait_for_clock(); }
  return 0;
}
|}

let test_unsigned_range () =
  refutes
    {|
volatile int n;
unsigned int y;
int main(void) {
  __astree_input_range(n, 0.0, 10.0);
  while (1) { y = n - 11; __astree_wait_for_clock(); }
  return 0;
}
|}

let test_short_conversion () =
  proves
    {|
volatile int n;
short s;
int main(void) {
  __astree_input_range(n, 0.0, 32767.0);
  while (1) { s = (short)n; __astree_wait_for_clock(); }
  return 0;
}
|};
  refutes
    {|
volatile int n;
short s;
int main(void) {
  __astree_input_range(n, 0.0, 32768.0);
  while (1) { s = (short)n; __astree_wait_for_clock(); }
  return 0;
}
|}

let test_mod_and_shift () =
  proves
    {|
volatile int n;
int y;
int main(void) {
  __astree_input_range(n, 1.0, 100.0);
  while (1) {
    y = (1000 % n) + (n >> 2) + (1 << 10);
    __astree_assert(y >= 1024);
    __astree_wait_for_clock();
  }
  return 0;
}
|};
  refutes
    {|
volatile int n;
int y;
int main(void) {
  __astree_input_range(n, 0.0, 40.0);
  while (1) { y = 1 << n; __astree_wait_for_clock(); }
  return 0;
}
|}

let test_float_division_refinement () =
  (* the guard excludes the zero divisor *)
  proves
    {|
volatile float d;
float y;
int main(void) {
  __astree_input_range(d, -10.0, 10.0);
  while (1) {
    float v;
    v = d;
    if (v > 0.5f) { y = 1.0f / v; __astree_assert(y <= 2.0f); }
    __astree_wait_for_clock();
  }
  return 0;
}
|}

let test_sqrt_domain () =
  proves
    {|
volatile float d;
float y;
int main(void) {
  __astree_input_range(d, 4.0, 16.0);
  while (1) {
    y = sqrtf(d);
    __astree_assert(y >= 1.9f && y <= 4.1f);
    __astree_wait_for_clock();
  }
  return 0;
}
|};
  refutes
    {|
volatile float d;
float y;
int main(void) {
  __astree_input_range(d, -1.0, 16.0);
  while (1) { y = sqrtf(d); __astree_wait_for_clock(); }
  return 0;
}
|}

let test_fabs () =
  proves
    {|
volatile float d;
float y;
int main(void) {
  __astree_input_range(d, -10.0, 3.0);
  while (1) {
    y = fabsf(d);
    __astree_assert(y >= 0.0f && y <= 10.0f);
    __astree_wait_for_clock();
  }
  return 0;
}
|}

(* memory ------------------------------------------------------------ *)

let test_guard_on_array_element () =
  (* guards refine constant-subscript cells like assignments
     (Sect. 6.1.3) *)
  proves
    {|
volatile int raw;
int t[3];
float y;
int main(void) {
  __astree_input_range(raw, -10.0, 10.0);
  y = 0.0f;
  while (1) {
    t[1] = raw;
    if (t[1] > 2) { y = 100.0f / (float)t[1]; __astree_assert(t[1] >= 3); }
    __astree_wait_for_clock();
  }
  return 0;
}
|}

let test_guard_on_struct_field () =
  proves
    {|
volatile float m;
struct ch { float v; _Bool ok; };
struct ch c;
float r;
int main(void) {
  __astree_input_range(m, -5.0, 5.0);
  r = 0.0f;
  while (1) {
    c.v = m;
    if (c.v > 1.0f) { r = 1.0f / c.v; __astree_assert(r <= 1.0f); }
    __astree_wait_for_clock();
  }
  return 0;
}
|}

let test_strong_update_array_const_index () =
  proves
    {|
int t[4];
int main(void) {
  t[0] = 1; t[1] = 2; t[2] = 3; t[3] = 4;
  t[2] = 9;
  __astree_assert(t[2] == 9);
  __astree_assert(t[1] == 2);
  while (1) { __astree_wait_for_clock(); }
  return 0;
}
|}

let test_call_by_reference_strong () =
  proves
    {|
void set(float *p, float v) { *p = v; }
float g;
int main(void) {
  set(&g, 3.5f);
  __astree_assert(g >= 3.4f && g <= 3.6f);
  while (1) { __astree_wait_for_clock(); }
  return 0;
}
|}

let test_polyvariant_calls () =
  (* the same callee analyzed in two contexts keeps both precisions *)
  proves
    {|
float double_it(float x) { return x * 2.0f; }
float a; float b;
int main(void) {
  a = double_it(1.0f);
  b = double_it(100.0f);
  __astree_assert(a <= 2.1f);
  __astree_assert(b >= 199.0f);
  while (1) { __astree_wait_for_clock(); }
  return 0;
}
|}

let test_clock_bounds_counter_sum () =
  (* two counters both bounded by the same clock *)
  proves
    {|
volatile _Bool e1; volatile _Bool e2;
int c1; int c2;
int main(void) {
  __astree_input_range(e1, 0.0, 1.0);
  __astree_input_range(e2, 0.0, 1.0);
  c1 = 0; c2 = 0;
  while (1) {
    if (e1) { c1 = c1 + 1; }
    if (e2) { c2 = c2 + 1; }
    __astree_wait_for_clock();
  }
  return 0;
}
|}

let test_volatile_reads_not_cached () =
  (* two reads of a volatile may differ: the analysis must not prove
     equality *)
  refutes
    {|
volatile int n;
int main(void) {
  __astree_input_range(n, 0.0, 10.0);
  while (1) {
    __astree_assert(n == n);   /* NOT provable for a volatile */
    __astree_wait_for_clock();
  }
  return 0;
}
|}

let suite =
  [
    Alcotest.test_case "comparison guards" `Quick test_guard_comparisons;
    Alcotest.test_case "conjunction" `Quick test_guard_conjunction;
    Alcotest.test_case "disjunction" `Quick test_guard_disjunction;
    Alcotest.test_case "negation" `Quick test_guard_negation;
    Alcotest.test_case "equality" `Quick test_guard_equality;
    Alcotest.test_case "unsatisfiable guard" `Quick test_unsat_guard_is_dead;
    Alcotest.test_case "signed overflow boundary" `Quick test_signed_overflow_boundary;
    Alcotest.test_case "unsigned range" `Quick test_unsigned_range;
    Alcotest.test_case "short conversion" `Quick test_short_conversion;
    Alcotest.test_case "mod and shifts" `Quick test_mod_and_shift;
    Alcotest.test_case "float division refinement" `Quick test_float_division_refinement;
    Alcotest.test_case "sqrt domain" `Quick test_sqrt_domain;
    Alcotest.test_case "fabs" `Quick test_fabs;
    Alcotest.test_case "guard on array element" `Quick test_guard_on_array_element;
    Alcotest.test_case "guard on struct field" `Quick test_guard_on_struct_field;
    Alcotest.test_case "strong array update" `Quick test_strong_update_array_const_index;
    Alcotest.test_case "call by reference" `Quick test_call_by_reference_strong;
    Alcotest.test_case "polyvariant calls" `Quick test_polyvariant_calls;
    Alcotest.test_case "clocked counters" `Quick test_clock_bounds_counter_sum;
    Alcotest.test_case "volatile reads distinct" `Quick test_volatile_reads_not_cached;
  ]
