(* Packing strategy tests (Sect. 7.2). *)

module F = Astree_frontend
module C = Astree_core

let compile src =
  let ast = F.Parser.parse_string ~file:"<t>" src in
  F.Typecheck.elab_program ast

let packs ?(cfg = C.Config.default) src = C.Packing.compute cfg (compile src)

let test_octagon_pack_per_block () =
  (* one pack per syntactic block with >= 2 linear variables *)
  let src =
    {|
float a; float b; float c;
float d; float e;
void f(void) {
  a = b + c;
  if (a > 0.0f) {
    d = e - a;
  }
}
int main(void) { f(); return 0; }
|}
  in
  let p = packs src in
  (* outer block of f: {a, b, c}; inner: {d, e, a} *)
  Alcotest.(check bool) "at least two packs" true
    (List.length p.C.Packing.octs >= 2);
  List.iter
    (fun (op : C.Packing.oct_pack) ->
      Alcotest.(check bool) "pack size" true (Array.length op.C.Packing.op_vars >= 2))
    p.C.Packing.octs

let test_octagon_pack_ignores_nonlinear () =
  let src =
    {|
float a; float b;
void f(void) { a = a * b; }
int main(void) { f(); return 0; }
|}
  in
  let p = packs src in
  Alcotest.(check int) "nonlinear not packed" 0 (List.length p.C.Packing.octs)

let test_octagon_pack_size_cap () =
  let src =
    {|
float v0; float v1; float v2; float v3; float v4; float v5; float v6; float v7;
void f(void) { v0 = v1 + v2 + v3 + v4 + v5 + v6 + v7; }
int main(void) { f(); return 0; }
|}
  in
  let cfg = { C.Config.default with C.Config.max_octagon_pack = 4 } in
  let p = packs ~cfg src in
  List.iter
    (fun (op : C.Packing.oct_pack) ->
      Alcotest.(check bool) "capped" true (Array.length op.C.Packing.op_vars <= 4))
    p.C.Packing.octs

let test_ellipsoid_pack_detection () =
  let src =
    {|
float x; float y; float x2;
volatile float t;
void f(void) { x2 = 1.4f * x - 0.6f * y + t; }
int main(void) { __astree_input_range(t, -1.0, 1.0); f(); return 0; }
|}
  in
  let p = packs src in
  Alcotest.(check bool) "detected" true (List.length p.C.Packing.ells >= 1);
  let ep = List.hd p.C.Packing.ells in
  Alcotest.(check bool) "prop 1 conditions" true
    (Astree_domains.Ellipsoid.valid_coeffs ~a:ep.C.Packing.ep_a
       ~b:ep.C.Packing.ep_b)

let test_ellipsoid_rejects_invalid_coeffs () =
  (* b = 1.5 violates 0 < b < 1; a = 2.5 with b = 0.9 violates a^2 < 4b *)
  let src =
    {|
float x; float y; float x2;
void f(void) { x2 = 0.5f * x - 1.5f * y; }
void g(void) { x2 = 2.5f * x - 0.9f * y; }
int main(void) { f(); g(); return 0; }
|}
  in
  let p = packs src in
  Alcotest.(check int) "rejected" 0 (List.length p.C.Packing.ells)

let test_dtree_pack_confirmation () =
  (* tentative but never used under a boolean branch: dropped *)
  let src_uncomfirmed =
    {|
volatile int n;
_Bool b;
int main(void) {
  __astree_input_range(n, 0.0, 10.0);
  while (1) {
    int x;
    x = n;
    b = (x == 0);
    __astree_wait_for_clock();
  }
  return 0;
}
|}
  in
  let p = packs src_uncomfirmed in
  Alcotest.(check int) "unconfirmed dropped" 0 (List.length p.C.Packing.dts);
  let src_confirmed =
    {|
volatile int n;
_Bool b;
float y;
int main(void) {
  __astree_input_range(n, 0.0, 10.0);
  while (1) {
    int x;
    x = n;
    b = (x == 0);
    if (!b) { y = 1.0f / (float)x; }
    __astree_wait_for_clock();
  }
  return 0;
}
|}
  in
  let p = packs src_confirmed in
  Alcotest.(check bool) "confirmed kept" true (List.length p.C.Packing.dts >= 1)

let test_dtree_bool_cap () =
  let src =
    {|
volatile int n;
_Bool b1; _Bool b2; _Bool b3; _Bool b4; _Bool b5;
float y;
int main(void) {
  __astree_input_range(n, 0.0, 10.0);
  while (1) {
    int x;
    x = n;
    b1 = (x == 0);
    b2 = b1;
    b3 = b2;
    b4 = b3;
    b5 = b4;
    if (!b5) { y = 1.0f / (float)x; }
    __astree_wait_for_clock();
  }
  return 0;
}
|}
  in
  let cfg = { C.Config.default with C.Config.max_dtree_bools = 3 } in
  let p = packs ~cfg src in
  List.iter
    (fun (dp : C.Packing.dt_pack) ->
      Alcotest.(check bool) "bool cap" true
        (Array.length dp.C.Packing.dp_bools <= 3))
    p.C.Packing.dts

let test_useful_packs_filter () =
  let src =
    {|
float a; float b; float c;
void f(void) { a = b + c; }
int main(void) { f(); return 0; }
|}
  in
  let p = packs src in
  Alcotest.(check bool) "has packs" true (List.length p.C.Packing.octs >= 1);
  let cfg =
    { C.Config.default with C.Config.useful_packs_only = Some ("t", []) }
  in
  let p' = packs ~cfg src in
  Alcotest.(check int) "all filtered" 0 (List.length p'.C.Packing.octs)

let test_syntactic_linear () =
  let p = compile "float a; float b; float r;\nint main(void) { r = 2.0f * a - b + 1.0f; return 0; }" in
  let found = ref None in
  List.iter
    (fun (_, fd) ->
      F.Tast.iter_stmts
        (fun s ->
          match s.F.Tast.sdesc with
          | F.Tast.Sassign ({ ldesc = F.Tast.Lvar v; _ }, e)
            when v.F.Tast.v_orig = "r" ->
              found := C.Packing.syntactic_linear e
          | _ -> ())
        fd.F.Tast.fd_body)
    p.F.Tast.p_funs;
  match !found with
  | Some (terms, c) ->
      Alcotest.(check int) "two terms" 2 (List.length terms);
      Alcotest.(check (float 0.)) "const" 1.0 c;
      List.iter
        (fun ((v : F.Tast.var), k) ->
          if v.F.Tast.v_orig = "a" then Alcotest.(check (float 0.)) "a coeff" 2.0 k
          else Alcotest.(check (float 0.)) "b coeff" (-1.0) k)
        terms
  | None -> Alcotest.fail "not linear"

let suite =
  [
    Alcotest.test_case "octagon pack per block" `Quick test_octagon_pack_per_block;
    Alcotest.test_case "nonlinear ignored" `Quick test_octagon_pack_ignores_nonlinear;
    Alcotest.test_case "octagon pack size cap" `Quick test_octagon_pack_size_cap;
    Alcotest.test_case "ellipsoid detection" `Quick test_ellipsoid_pack_detection;
    Alcotest.test_case "ellipsoid coefficient conditions" `Quick test_ellipsoid_rejects_invalid_coeffs;
    Alcotest.test_case "dtree confirmation" `Quick test_dtree_pack_confirmation;
    Alcotest.test_case "dtree boolean cap" `Quick test_dtree_bool_cap;
    Alcotest.test_case "useful-pack filter" `Quick test_useful_packs_filter;
    Alcotest.test_case "syntactic linear forms" `Quick test_syntactic_linear;
  ]
