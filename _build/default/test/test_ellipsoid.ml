(* Ellipsoid domain tests (Sect. 6.2.3): Prop. 1, the delta function,
   reduction and bound extraction, validated against concrete filter
   trajectories. *)

module F = Astree_frontend
module D = Astree_domains
module E = D.Ellipsoid

let mkvar =
  let next = ref 2000 in
  fun name ->
    incr next;
    {
      F.Tast.v_id = !next;
      v_name = name;
      v_orig = name;
      v_ty = F.Ctypes.t_float;
      v_kind = F.Tast.Kglobal;
      v_volatile = false;
      v_loc = F.Loc.dummy;
    }

let a_c = 1.5
let b_c = 0.7

let make3 () =
  let x = mkvar "x" and y = mkvar "y" and z = mkvar "z" in
  (x, y, z, E.make ~a:a_c ~b:b_c ~fkind:F.Ctypes.Fsingle [| x; y; z |])

let test_valid_coeffs () =
  Alcotest.(check bool) "valid" true (E.valid_coeffs ~a:1.5 ~b:0.7);
  Alcotest.(check bool) "b too big" false (E.valid_coeffs ~a:0.5 ~b:1.0);
  Alcotest.(check bool) "b negative" false (E.valid_coeffs ~a:0.5 ~b:(-0.1));
  Alcotest.(check bool) "a too big" false (E.valid_coeffs ~a:2.0 ~b:0.7);
  Alcotest.(check bool) "negative a ok" true (E.valid_coeffs ~a:(-1.5) ~b:0.7)

let test_set_find_forget () =
  let x, y, _, e = make3 () in
  Alcotest.(check bool) "top" true (E.is_top e);
  let e = E.set e x y 10.0 in
  Alcotest.(check (float 0.)) "find" 10.0 (E.find e x y);
  Alcotest.(check bool) "not top" false (E.is_top e);
  let e = E.forget e x in
  Alcotest.(check bool) "forgot" true (E.find e x y = Float.infinity)

let test_delta_monotone_and_stable () =
  let _, _, _, e = make3 () in
  let t_max = 1.0 in
  (* delta is monotone in k *)
  Alcotest.(check bool) "monotone" true
    (E.delta e ~t_max 10.0 <= E.delta e ~t_max 20.0);
  (* the self-stable bound of Prop. 1 is preserved by delta (up to the
     float inflation, absorbed by doubling the bound) *)
  let k0 = E.stable_bound e ~t_max in
  let k = 2.0 *. k0 in
  Alcotest.(check bool) "preserved" true (E.delta e ~t_max k <= k)

let test_exact_delta_value () =
  (* in exact arithmetic delta(k) ~ (sqrt(b k) + tM)^2; the implemented
     delta must dominate it but only slightly *)
  let _, _, _, e = make3 () in
  let t_max = 1.0 and k = 37.5 in
  let exact = ((sqrt (b_c *. k)) +. t_max) ** 2.0 in
  let d = E.delta e ~t_max k in
  Alcotest.(check bool) "dominates" true (d >= exact);
  Alcotest.(check bool) "tight" true (d <= exact *. 1.001)

let test_assign_filter_propagates () =
  let x, y, z, e = make3 () in
  let e = E.set e y z 10.0 in
  let e' = E.assign_filter e x y z ~t_max:1.0 in
  let k = E.find e' x y in
  Alcotest.(check bool) "finite" true (k < Float.infinity);
  Alcotest.(check bool) "delta value" true
    (k = E.delta e ~t_max:1.0 10.0)

let test_assign_copy () =
  let x, y, z, e = make3 () in
  let e = E.set e y z 5.0 in
  (* x := y renames y to x in constraints: r'(x, z) = r(y, z) *)
  let e' = E.assign_copy e x y in
  Alcotest.(check (float 0.)) "copied" 5.0 (E.find e' x z)

let test_join_meet_widen () =
  let x, y, _, e = make3 () in
  let e1 = E.set e x y 10.0 and e2 = E.set e x y 20.0 in
  Alcotest.(check (float 0.)) "join max" 20.0 (E.find (E.join e1 e2) x y);
  Alcotest.(check (float 0.)) "meet min" 10.0 (E.find (E.meet e1 e2) x y);
  (* one side unconstrained: join drops the constraint *)
  Alcotest.(check bool) "join with top" true
    (E.find (E.join e1 e) x y = Float.infinity);
  (* meet with top keeps it *)
  Alcotest.(check (float 0.)) "meet with top" 10.0 (E.find (E.meet e1 e) x y);
  let w = E.widen ~thresholds:(D.Thresholds.of_list [ 100.0 ]) e1 e2 in
  Alcotest.(check (float 0.)) "widen to threshold" 100.0 (E.find w x y)

let test_subset () =
  let x, y, _, e = make3 () in
  let e1 = E.set e x y 10.0 and e2 = E.set e x y 20.0 in
  Alcotest.(check bool) "smaller k included" true (E.subset e1 e2);
  Alcotest.(check bool) "reverse fails" false (E.subset e2 e1);
  Alcotest.(check bool) "top is greatest" true (E.subset e1 e);
  Alcotest.(check bool) "top not below" false (E.subset e e1)

let test_extract_bound () =
  let x, y, _, e = make3 () in
  let k = 100.0 in
  let e = E.set e x y k in
  match E.extract_bound e x y with
  | Some m ->
      let exact = 2.0 *. sqrt (b_c *. k /. ((4.0 *. b_c) -. (a_c *. a_c))) in
      Alcotest.(check bool) "dominates exact" true (m >= exact);
      Alcotest.(check bool) "tight" true (m <= exact *. 1.001)
  | None -> Alcotest.fail "no bound"

let test_reduce_from_intervals () =
  let x, y, _, e = make3 () in
  let oracle v =
    if v.F.Tast.v_id = x.F.Tast.v_id then (-1.0, 1.0)
    else if v.F.Tast.v_id = y.F.Tast.v_id then (-1.0, 1.0)
    else (Float.neg_infinity, Float.infinity)
  in
  let e' = E.reduce_from_intervals oracle e x y in
  let k = E.find e' x y in
  (* mx^2 + |a| mx my + b my^2 = 1 + 1.5 + 0.7 = 3.2 *)
  Alcotest.(check bool) "finite" true (k < Float.infinity);
  Alcotest.(check bool) "value" true (k >= 3.2 && k <= 3.21)

(* Soundness against concrete trajectories: the ellipse bound extracted
   after a chain of filter updates dominates simulated |X|. *)
let prop_filter_bound_sound =
  QCheck.Test.make ~name:"ellipse bound dominates simulated trajectories"
    ~count:50
    QCheck.(pair (int_range 1 1000) (float_range 0.1 1.0))
    (fun (seed, t_max) ->
      let x, y, z, e0 = make3 () in
      (* abstract: start from the interval reduction of X,Y in [-t, t],
         then apply delta until stable (with a cap) *)
      let oracle v =
        if v.F.Tast.v_id = x.F.Tast.v_id || v.F.Tast.v_id = y.F.Tast.v_id
           || v.F.Tast.v_id = z.F.Tast.v_id
        then (-.t_max, t_max)
        else (Float.neg_infinity, Float.infinity)
      in
      let e = E.reduce_from_intervals oracle e0 y z in
      let rec stabilize n e =
        if n = 0 then e
        else
          let e' = E.assign_filter e x y z ~t_max in
          (* rotate: z <- y, y <- x as in the filter body *)
          let e'' = E.assign_copy (E.assign_copy e' z y) y x in
          let k_old = E.find e y z and k_new = E.find e'' y z in
          if k_new <= k_old then e else stabilize (n - 1) (E.join e e'')
      in
      let e = stabilize 60 e in
      let k = E.find e y z in
      QCheck.assume (k < Float.infinity);
      let bound = 2.0 *. sqrt (b_c *. k /. ((4.0 *. b_c) -. (a_c *. a_c))) in
      (* simulate the filter concretely *)
      let rng = ref seed in
      let next () =
        rng := ((!rng * 1103515245) + 12345) land 0x3FFFFFFF;
        let u = float_of_int !rng /. float_of_int 0x3FFFFFFF in
        t_max *. ((2.0 *. u) -. 1.0)
      in
      let xs = ref 0.0 and ys = ref 0.0 in
      let worst = ref 0.0 in
      for _ = 1 to 2000 do
        let t = next () in
        let x' = (a_c *. !xs) -. (b_c *. !ys) +. t in
        ys := !xs;
        xs := x';
        if Float.abs !xs > !worst then worst := Float.abs !xs
      done;
      !worst <= bound +. 1e-6)

let suite =
  [
    Alcotest.test_case "valid coefficients" `Quick test_valid_coeffs;
    Alcotest.test_case "set/find/forget" `Quick test_set_find_forget;
    Alcotest.test_case "delta monotone & Prop.1" `Quick test_delta_monotone_and_stable;
    Alcotest.test_case "delta close to exact" `Quick test_exact_delta_value;
    Alcotest.test_case "filter assignment" `Quick test_assign_filter_propagates;
    Alcotest.test_case "copy assignment" `Quick test_assign_copy;
    Alcotest.test_case "join/meet/widen" `Quick test_join_meet_widen;
    Alcotest.test_case "subset" `Quick test_subset;
    Alcotest.test_case "bound extraction" `Quick test_extract_bound;
    Alcotest.test_case "interval reduction" `Quick test_reduce_from_intervals;
  ]
  @ [ QCheck_alcotest.to_alcotest prop_filter_bound_sound ]
