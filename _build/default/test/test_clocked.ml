(* Clocked domain tests (Sect. 6.2.1). *)

module D = Astree_domains
module C = D.Clocked
module I = D.Itv

let clock0 = I.int_const 0
let clock5 = I.int_range 0 5

let test_of_itv_reduce () =
  let c = C.of_itv (I.int_range 0 10) clock0 in
  Alcotest.(check bool) "v" true (I.equal (C.to_itv c) (I.int_range 0 10));
  (* at clock 0, v- = v and v+ = v *)
  Alcotest.(check bool) "vminus" true (I.equal c.C.vminus (I.int_range 0 10))

let test_tick_shifts () =
  let c = C.of_itv (I.int_range 0 10) clock0 in
  let c = C.tick c in
  Alcotest.(check bool) "vminus shifted down" true
    (I.equal c.C.vminus (I.int_range (-1) 9));
  Alcotest.(check bool) "vplus shifted up" true
    (I.equal c.C.vplus (I.int_range 1 11))

let test_counter_bounded_by_clock () =
  (* the paper's counter: starts at 0, incremented by at most 1 per tick;
     v - clock stays <= 0 so the reduction bounds it by the clock *)
  let c = C.of_itv (I.int_const 0) clock0 in
  (* one cycle: increment by [0,1] then tick *)
  let step c = C.tick (C.add_const (I.int_range 0 1) c) in
  let c = step (step (step c)) in
  (* after 3 ticks, clock = 3 *)
  let reduced = C.reduce (I.int_const 3) c in
  match C.to_itv reduced with
  | I.Int (lo, hi) ->
      Alcotest.(check bool) "bounded by clock" true (lo >= 0 && hi <= 3)
  | i -> Alcotest.failf "unexpected %a" I.pp i

let test_reduce_with_unknown_value () =
  (* even if v was widened to top, v - clock <= 0 recovers the bound *)
  let c =
    { C.v = I.top_int; vminus = I.int_range (-1000) 0; vplus = I.Bot }
  in
  let reduced = C.reduce (I.int_range 0 100) c in
  match C.to_itv reduced with
  | I.Int (_, hi) -> Alcotest.(check bool) "recovered" true (hi <= 100)
  | i -> Alcotest.failf "unexpected %a" I.pp i

let test_join_meet_bot_components () =
  (* Bot clock components mean "no information": the join of a tracked
     and an untracked value must be untracked *)
  let tracked = C.of_itv (I.int_range 0 5) clock0 in
  let untracked = { C.v = I.int_range 0 5; vminus = I.Bot; vplus = I.Bot } in
  let j = C.join tracked untracked in
  Alcotest.(check bool) "join unknown" true (I.is_bot j.C.vminus);
  (* meet keeps the tracked side *)
  let m = C.meet tracked untracked in
  Alcotest.(check bool) "meet tracked" false (I.is_bot m.C.vminus)

let test_subset_with_bot_components () =
  let tracked = C.of_itv (I.int_range 0 5) clock0 in
  let untracked = { C.v = I.int_range 0 5; vminus = I.Bot; vplus = I.Bot } in
  Alcotest.(check bool) "tracked below untracked" true
    (C.subset tracked untracked);
  Alcotest.(check bool) "untracked not below tracked" false
    (C.subset untracked tracked)

let test_float_cells () =
  let c = C.of_itv (I.float_range 0.0 1.0) clock5 in
  let c = C.tick c in
  Alcotest.(check bool) "no kind crash" true (not (C.is_bot c));
  match c.C.vminus with
  | I.Float _ -> ()
  | i -> Alcotest.failf "vminus kind: %a" I.pp i

let test_widen_clocked () =
  let a = C.of_itv (I.int_range 0 5) clock0 in
  let b = C.of_itv (I.int_range 0 7) clock0 in
  let w = C.widen ~thresholds:D.Thresholds.default a b in
  Alcotest.(check bool) "upper bound" true (C.subset a w && C.subset b w)

let suite =
  [
    Alcotest.test_case "of_itv" `Quick test_of_itv_reduce;
    Alcotest.test_case "tick shifts components" `Quick test_tick_shifts;
    Alcotest.test_case "counter bounded by clock" `Quick test_counter_bounded_by_clock;
    Alcotest.test_case "reduction recovers widened value" `Quick test_reduce_with_unknown_value;
    Alcotest.test_case "bot components are top" `Quick test_join_meet_bot_components;
    Alcotest.test_case "subset with bot components" `Quick test_subset_with_bot_components;
    Alcotest.test_case "float cells" `Quick test_float_cells;
    Alcotest.test_case "widen" `Quick test_widen_clocked;
  ]
