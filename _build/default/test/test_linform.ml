(* Linear forms and linearization tests (Sect. 6.3). *)

module F = Astree_frontend
module D = Astree_domains
module LF = D.Linear_form

let mkvar =
  let next = ref 4000 in
  fun name ->
    incr next;
    {
      F.Tast.v_id = !next;
      v_name = name;
      v_orig = name;
      v_ty = F.Ctypes.t_float;
      v_kind = F.Tast.Kglobal;
      v_volatile = false;
      v_loc = F.Loc.dummy;
    }

let test_exact_coefficients () =
  let x = mkvar "x" and y = mkvar "y" in
  (* x + y - x has coefficient exactly 1 on y and none on x *)
  let f = LF.(sub (add (of_var x) (of_var y)) (of_var x)) in
  match LF.as_single_var f with
  | Some (v, k, c) ->
      Alcotest.(check bool) "var" true (F.Tast.Var.equal v y);
      Alcotest.(check (float 0.)) "coeff lo" 1.0 k.LF.lo;
      Alcotest.(check (float 0.)) "coeff hi" 1.0 k.LF.hi;
      Alcotest.(check (float 0.)) "const" 0.0 c.LF.lo
  | None -> Alcotest.fail "not single var"

let test_scale () =
  let x = mkvar "x" in
  let f = LF.scale (LF.coeff_const 0.5) (LF.of_var x) in
  let lo, hi = LF.eval (fun _ -> (0.0, 10.0)) f in
  Alcotest.(check bool) "range" true (lo <= 0.0 && hi >= 5.0 && hi <= 5.0001)

let test_eval_paper_example () =
  (* l[X - 0.2*X] = 0.8*X evaluates to [0, 0.8] for X in [0,1] *)
  let x = mkvar "x" in
  let f = LF.(sub (of_var x) (scale (coeff_const 0.2) (of_var x))) in
  let lo, hi = LF.eval (fun _ -> (0.0, 1.0)) f in
  Alcotest.(check bool) "lower" true (lo >= -0.0001 && lo <= 0.0);
  Alcotest.(check bool) "upper" true (hi >= 0.8 && hi <= 0.8001)

let test_div_const () =
  let x = mkvar "x" in
  let f = LF.of_var x in
  (match LF.div_const f { LF.lo = 2.0; hi = 2.0 } with
  | Some f' ->
      let lo, hi = LF.eval (fun _ -> (0.0, 10.0)) f' in
      Alcotest.(check bool) "halved" true (lo <= 0.0 && hi >= 5.0 && hi <= 5.001)
  | None -> Alcotest.fail "div failed");
  Alcotest.(check bool) "div by zero-crossing fails" true
    (LF.div_const f { LF.lo = -1.0; hi = 1.0 } = None)

let test_rounding_error_term () =
  let x = mkvar "x" in
  let f = LF.add_rounding_error F.Ctypes.Fsingle 100.0 (LF.of_var x) in
  let lo, hi = LF.eval (fun _ -> (1.0, 1.0)) f in
  (* error ~ 100 * 2^-24 ~ 6e-6 *)
  Alcotest.(check bool) "enlarged" true (hi > 1.0 && hi < 1.0001);
  Alcotest.(check bool) "symmetric" true (lo < 1.0 && lo > 0.9999)

(* linearization of typed expressions *)
let mk_expr ety edesc = { F.Tast.edesc; ety; eloc = F.Loc.dummy }
let fs = F.Ctypes.Tfloat F.Ctypes.Fsingle

let var_e (v : F.Tast.var) =
  mk_expr fs
    (F.Tast.Elval { F.Tast.ldesc = F.Tast.Lvar v; lty = v.F.Tast.v_ty; lloc = F.Loc.dummy })

let test_linearize_paper_example () =
  (* X - 0.2f * X refines [-0.2, 1] to about [0, 0.8] *)
  let x = mkvar "x" in
  let e =
    mk_expr fs
      (F.Tast.Ebinop
         ( F.Tast.Sub,
           var_e x,
           mk_expr fs
             (F.Tast.Ebinop
                (F.Tast.Mul, mk_expr fs (F.Tast.Efloat 0.2), var_e x)) ))
  in
  let oracle _ = (0.0, 1.0) in
  let plain = D.Itv.float_range (-0.2) 1.0 in
  match D.Linearize.refine_eval oracle e plain with
  | D.Itv.Float (lo, hi) ->
      Alcotest.(check bool) "refined hi" true (hi <= 0.801);
      Alcotest.(check bool) "refined lo" true (lo >= -0.001)
  | i -> Alcotest.failf "unexpected %a" D.Itv.pp i

let test_linearize_nonlinear_gives_up () =
  let x = mkvar "x" in
  let e = mk_expr fs (F.Tast.Ebinop (F.Tast.Mul, var_e x, var_e x)) in
  Alcotest.(check bool) "x*x intervalizes one side" true
    (D.Linearize.linearize (fun _ -> (0.0, 2.0)) e <> None);
  let e' = mk_expr fs (F.Tast.Eunop (F.Tast.Sqrt, var_e x)) in
  Alcotest.(check bool) "sqrt gives up" true
    (D.Linearize.linearize (fun _ -> (0.0, 2.0)) e' = None)

let prop_linearize_sound =
  (* the linear form's interval always contains the concrete value *)
  QCheck.Test.make ~name:"linearization over-approximates concrete eval"
    ~count:200
    QCheck.(
      quad (float_range (-10.) 10.) (float_range (-10.) 10.)
        (float_range (-5.) 5.) (float_range (-5.) 5.))
    (fun (xv, yv, c1, c2) ->
      let x = mkvar "x" and y = mkvar "y" in
      (* e = c1*x + (y - c2) computed in single precision *)
      let e =
        mk_expr fs
          (F.Tast.Ebinop
             ( F.Tast.Add,
               mk_expr fs
                 (F.Tast.Ebinop
                    (F.Tast.Mul, mk_expr fs (F.Tast.Efloat c1), var_e x)),
               mk_expr fs
                 (F.Tast.Ebinop
                    (F.Tast.Sub, var_e y, mk_expr fs (F.Tast.Efloat c2))) ))
      in
      let oracle v = if v.F.Tast.v_name = "x" then (xv, xv) else (yv, yv) in
      match D.Linearize.linearize oracle e with
      | None -> false
      | Some form ->
          let lo, hi = LF.eval oracle form in
          (* concrete single-precision evaluation *)
          let r32 f = Int32.float_of_bits (Int32.bits_of_float f) in
          let concrete = r32 (r32 (c1 *. xv) +. r32 (yv -. c2)) in
          lo <= concrete && concrete <= hi)

let suite =
  [
    Alcotest.test_case "exact coefficients" `Quick test_exact_coefficients;
    Alcotest.test_case "scale" `Quick test_scale;
    Alcotest.test_case "paper example form" `Quick test_eval_paper_example;
    Alcotest.test_case "division by constant" `Quick test_div_const;
    Alcotest.test_case "rounding error term" `Quick test_rounding_error_term;
    Alcotest.test_case "linearize paper example" `Quick test_linearize_paper_example;
    Alcotest.test_case "non-linear handling" `Quick test_linearize_nonlinear_gives_up;
  ]
  @ [ QCheck_alcotest.to_alcotest prop_linearize_sound ]
