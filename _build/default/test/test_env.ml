(* Environment representation tests (Sect. 6.1.2): model-based agreement
   between the sharable functional maps and the naive arrays, plus
   lattice properties at the Avalue level. *)

module C = Astree_core
module D = Astree_domains

let clock0 = D.Itv.int_const 0

let av_of_range lo hi =
  C.Avalue.of_itv ~use_clocked:false ~clock:clock0 (D.Itv.int_range lo hi)

let gen_env_ops : (int * (int * int)) list QCheck.Gen.t =
  QCheck.Gen.(
    list_size (int_range 0 40)
      (pair (int_range 0 100)
         (pair (int_range (-50) 50) (int_range 0 50))))

let arb_ops =
  QCheck.make
    ~print:(fun l ->
      String.concat ";"
        (List.map (fun (k, (lo, w)) -> Fmt.str "%d->[%d,%d]" k lo (lo + w)) l))
    gen_env_ops

let build naive ops =
  List.fold_left
    (fun e (k, (lo, w)) -> C.Env.set e k (av_of_range lo (lo + w)))
    (C.Env.empty ~naive ~ncells:128)
    ops

let same_bindings a b =
  let collect e = C.Env.fold (fun k v acc -> (k, v) :: acc) e [] in
  let la = List.sort compare (List.map (fun (k, v) -> (k, C.Avalue.itv v)) (collect a)) in
  let lb = List.sort compare (List.map (fun (k, v) -> (k, C.Avalue.itv v)) (collect b)) in
  la = lb

let prop_representations_agree op_name op =
  QCheck.Test.make ~name:(op_name ^ ": shared and naive agree")
    (QCheck.pair arb_ops arb_ops)
    (fun (o1, o2) ->
      let s = op (build false o1) (build false o2) in
      let n = op (build true o1) (build true o2) in
      same_bindings s n)

let prop_join_agree = prop_representations_agree "join" C.Env.join
let prop_meet_agree = prop_representations_agree "meet" C.Env.meet

let prop_widen_agree =
  prop_representations_agree "widen"
    (C.Env.widen ~thresholds:D.Thresholds.default)

let prop_subset_agree =
  QCheck.Test.make ~name:"subset: shared and naive agree"
    (QCheck.pair arb_ops arb_ops)
    (fun (o1, o2) ->
      C.Env.subset (build false o1) (build false o2)
      = C.Env.subset (build true o1) (build true o2))

let prop_join_upper_bound =
  (* sides must range over the same cells: one-sided bindings model
     out-of-scope locals and are kept as-is by the join (see Env) *)
  QCheck.Test.make ~name:"join is an upper bound (same key set)"
    (QCheck.pair arb_ops arb_ops)
    (fun (o1, o2) ->
      let keys = List.map fst (o1 @ o2) in
      let pad ops =
        ops @ List.map (fun k -> (k, (0, 0))) keys
        (* later bindings win in [build], so pad FIRST *)
      in
      let a = build false (List.rev (pad o1))
      and b = build false (List.rev (pad o2)) in
      let j = C.Env.join a b in
      C.Env.subset a j && C.Env.subset b j)

let prop_join_idempotent =
  QCheck.Test.make ~name:"join with self is physically cheap and equal"
    arb_ops
    (fun ops ->
      let a = build false ops in
      C.Env.equal (C.Env.join a a) a)

let test_map_all_tick () =
  let e = C.Env.set (C.Env.empty ~naive:false ~ncells:4) 0
      (C.Avalue.of_itv ~use_clocked:true ~clock:clock0 (D.Itv.int_range 0 5))
  in
  let e' = C.Env.map_all C.Avalue.tick e in
  match C.Env.find e' 0 with
  | Some av ->
      Alcotest.(check bool) "vminus shifted" true
        (D.Itv.equal av.D.Clocked.vminus (D.Itv.int_range (-1) 4))
  | None -> Alcotest.fail "cell lost"

let test_set_find_remove () =
  let e = C.Env.empty ~naive:false ~ncells:4 in
  let e = C.Env.set e 42 (av_of_range 1 2) in
  Alcotest.(check bool) "found" true (C.Env.find e 42 <> None);
  Alcotest.(check int) "card" 1 (C.Env.cardinal e);
  let e = C.Env.remove e 42 in
  Alcotest.(check bool) "removed" true (C.Env.find e 42 = None)

let suite =
  [
    Alcotest.test_case "map_all / tick" `Quick test_map_all_tick;
    Alcotest.test_case "set/find/remove" `Quick test_set_find_remove;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_join_agree; prop_meet_agree; prop_widen_agree;
        prop_subset_agree; prop_join_upper_bound; prop_join_idempotent;
      ]
