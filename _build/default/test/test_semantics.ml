(* C semantics edge cases (Sect. 5.3: "the semantics of C as well as
   some information about the target environment"), checked three ways:
   the concrete interpreter computes the expected value, the analyzer
   proves the matching assertion, and both agree on error behaviour. *)

module C = Astree_core
module F = Astree_frontend

let proves src =
  Alcotest.(check int) "proved" 0
    (C.Analysis.n_alarms (C.Analysis.analyze_string src))

let finishes src =
  let ast = F.Parser.parse_string ~file:"<t>" src in
  let p = F.Typecheck.elab_program ast in
  match F.Interp.run ~max_ticks:4 p with
  | F.Interp.Finished -> ()
  | F.Interp.Error (k, l) ->
      Alcotest.failf "concrete error %a at %a" F.Interp.pp_error_kind k
        F.Loc.pp l

let both src = proves src; finishes src

(* C division truncates toward zero; the remainder has the dividend's
   sign *)
let test_division_truncation () =
  both
    {|
int main(void) {
  int a; int b; int c; int d;
  a = -7 / 2;    __astree_assert(a == -3);
  b = 7 / -2;    __astree_assert(b == -3);
  c = -7 % 2;    __astree_assert(c == -1);
  d = 7 % -2;    __astree_assert(d == 1);
  while (1) { __astree_wait_for_clock(); }
  return 0;
}
|}

let test_float_to_int_truncation () =
  both
    {|
int main(void) {
  int a; int b;
  a = (int)2.9f;   __astree_assert(a == 2);
  b = (int)-2.9f;  __astree_assert(b == -2);
  while (1) { __astree_wait_for_clock(); }
  return 0;
}
|}

let test_integer_promotion () =
  (* char/short promote to int before arithmetic: no intermediate
     overflow at short range *)
  both
    {|
int main(void) {
  short a; short b; int c;
  a = 30000; b = 30000;
  c = a + b;                /* computed in int: fine */
  __astree_assert(c == 60000);
  while (1) { __astree_wait_for_clock(); }
  return 0;
}
|}

let test_char_range () =
  both
    {|
int main(void) {
  char c;
  c = 'A';
  __astree_assert(c == 65);
  c = c + 1;
  __astree_assert(c == 66);
  while (1) { __astree_wait_for_clock(); }
  return 0;
}
|}

let test_unsigned_comparison () =
  both
    {|
int main(void) {
  unsigned int u;
  u = 5;
  u = u - 3;
  __astree_assert(u == 2);
  while (1) { __astree_wait_for_clock(); }
  return 0;
}
|}

let test_shift_semantics () =
  both
    {|
int main(void) {
  int a; int b;
  a = 1 << 10;    __astree_assert(a == 1024);
  b = -16 >> 2;   __astree_assert(b == -4);   /* arithmetic shift */
  while (1) { __astree_wait_for_clock(); }
  return 0;
}
|}

let test_single_precision_rounding () =
  (* 0.1f is not 0.1: the analyzer and the interpreter agree on the
     binary32 value *)
  both
    {|
float f;
int main(void) {
  f = 0.1f;
  __astree_assert(f > 0.0999999f && f < 0.1000001f);
  f = f * 10.0f;
  __astree_assert(f > 0.999999f && f < 1.000001f);
  while (1) { __astree_wait_for_clock(); }
  return 0;
}
|}

let test_double_vs_single () =
  both
    {|
double d;
float f;
int main(void) {
  d = 1.0 / 3.0;
  f = (float)d;
  __astree_assert(f > 0.333333f && f < 0.333334f);
  __astree_assert(d > 0.333333333333 && d < 0.333333333334);
  while (1) { __astree_wait_for_clock(); }
  return 0;
}
|}

let test_ternary_and_comma () =
  both
    {|
int main(void) {
  int a; int b;
  a = (3 > 2) ? 10 : 20;
  __astree_assert(a == 10);
  b = (a = 5, a + 1);
  __astree_assert(b == 6);
  __astree_assert(a == 5);
  while (1) { __astree_wait_for_clock(); }
  return 0;
}
|}

let test_compound_assignment_and_incr () =
  both
    {|
int main(void) {
  int x; int y;
  x = 10;
  x += 5;  __astree_assert(x == 15);
  x -= 3;  __astree_assert(x == 12);
  x *= 2;  __astree_assert(x == 24);
  x /= 5;  __astree_assert(x == 4);
  y = x++; __astree_assert(y == 4);
  __astree_assert(x == 5);
  y = ++x; __astree_assert(y == 6);
  while (1) { __astree_wait_for_clock(); }
  return 0;
}
|}

let test_short_circuit_no_spurious_error () =
  (* && must not evaluate its rhs when the lhs is false: the division by
     zero is unreachable *)
  both
    {|
int main(void) {
  int z; int ok;
  z = 0;
  ok = (z != 0 && 10 / z > 1);
  __astree_assert(ok == 0);
  while (1) { __astree_wait_for_clock(); }
  return 0;
}
|}

let test_hex_and_char_literals () =
  both
    {|
int main(void) {
  int a; int b;
  a = 0xFF;      __astree_assert(a == 255);
  b = '\n';      __astree_assert(b == 10);
  while (1) { __astree_wait_for_clock(); }
  return 0;
}
|}

let suite =
  [
    Alcotest.test_case "division truncation" `Quick test_division_truncation;
    Alcotest.test_case "float->int truncation" `Quick test_float_to_int_truncation;
    Alcotest.test_case "integer promotion" `Quick test_integer_promotion;
    Alcotest.test_case "char range" `Quick test_char_range;
    Alcotest.test_case "unsigned arithmetic" `Quick test_unsigned_comparison;
    Alcotest.test_case "shift semantics" `Quick test_shift_semantics;
    Alcotest.test_case "binary32 rounding" `Quick test_single_precision_rounding;
    Alcotest.test_case "double vs single" `Quick test_double_vs_single;
    Alcotest.test_case "ternary and comma" `Quick test_ternary_and_comma;
    Alcotest.test_case "compound assignment, ++/--" `Quick test_compound_assignment_and_incr;
    Alcotest.test_case "short-circuit evaluation" `Quick test_short_circuit_no_spurious_error;
    Alcotest.test_case "hex and char literals" `Quick test_hex_and_char_literals;
  ]
