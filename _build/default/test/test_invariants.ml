(* Invariant census and dump tests (Sect. 5.3, 9.4.1). *)

module C = Astree_core
module G = Astree_gen

let analyzed =
  lazy
    (let g = G.Generator.reference ~target_lines:400 () in
     let cfg =
       {
         C.Config.default with
         C.Config.partitioned_functions = g.G.Generator.partition_fns;
       }
     in
     C.Analysis.analyze_string ~cfg g.G.Generator.source)

let test_census_shape () =
  let r = Lazy.force analyzed in
  match C.Invariant_census.main_loop_census r with
  | None -> Alcotest.fail "no invariant recorded"
  | Some c ->
      Alcotest.(check bool) "some intervals" true
        (c.C.Invariant_census.c_interval_assertions > 0);
      Alcotest.(check bool) "some clock assertions" true
        (c.C.Invariant_census.c_clock_assertions > 0);
      Alcotest.(check bool) "clock dominates intervals (paper shape)" true
        (c.C.Invariant_census.c_clock_assertions
         > c.C.Invariant_census.c_interval_assertions);
      Alcotest.(check bool) "octagonal present" true
        (c.C.Invariant_census.c_oct_additive
         + c.C.Invariant_census.c_oct_subtractive
         > 0);
      Alcotest.(check bool) "ellipsoidal present" true
        (c.C.Invariant_census.c_ellipsoid_assertions > 0);
      Alcotest.(check bool) "boolean cells counted" true
        (c.C.Invariant_census.c_bool_assertions > 0);
      Alcotest.(check bool) "fp constants recorded" true
        (c.C.Invariant_census.c_float_constants > 0)

let test_dump_nonempty_and_parsable_shape () =
  let r = Lazy.force analyzed in
  let s = C.Invariant_dump.to_string r in
  Alcotest.(check bool) "non-empty" true (String.length s > 1000);
  (* the dump must mention every global of the program *)
  let mentions name =
    let n = String.length s and m = String.length name in
    let rec go i = i + m <= n && (String.sub s i m = name || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions counters" true (mentions "cnt_");
  Alcotest.(check bool) "mentions the clock" true (mentions "clock in");
  Alcotest.(check bool) "mentions octagons" true (mentions "octagon #")

let test_dump_to_file () =
  let r = Lazy.force analyzed in
  let path = Filename.temp_file "astree" ".inv" in
  let bytes = C.Invariant_dump.to_file r path in
  let real = (Unix.stat path).Unix.st_size in
  Sys.remove path;
  Alcotest.(check int) "size reported" real bytes

let test_census_scales_with_program () =
  let census lines =
    let g = G.Generator.reference ~target_lines:lines () in
    let r = C.Analysis.analyze_string g.G.Generator.source in
    match C.Invariant_census.main_loop_census r with
    | Some c -> c.C.Invariant_census.c_interval_assertions
    | None -> 0
  in
  let small = census 200 and large = census 800 in
  Alcotest.(check bool) "monotone in size" true (large > small)

let suite =
  [
    Alcotest.test_case "census shape" `Quick test_census_shape;
    Alcotest.test_case "dump content" `Quick test_dump_nonempty_and_parsable_shape;
    Alcotest.test_case "dump to file" `Quick test_dump_to_file;
    Alcotest.test_case "census scales" `Quick test_census_scales_with_program;
  ]
