(* Decision-tree domain tests (Sect. 6.2.4). *)

module F = Astree_frontend
module D = Astree_domains
module DT = D.Decision_tree
module I = D.Itv
module VarMap = F.Tast.VarMap

let mkvar =
  let next = ref 3000 in
  fun name ty ->
    incr next;
    {
      F.Tast.v_id = !next;
      v_name = name;
      v_orig = name;
      v_ty = ty;
      v_kind = F.Tast.Kglobal;
      v_volatile = false;
      v_loc = F.Loc.dummy;
    }

let mkbool name = mkvar name F.Ctypes.t_bool
let mknum name = mkvar name F.Ctypes.t_int

let setup () =
  let b1 = mkbool "b1" and b2 = mkbool "b2" and x = mknum "x" in
  (b1, b2, x, DT.top [| b1; b2 |] [| x |])

let test_top_bot () =
  let _, _, _, d = setup () in
  Alcotest.(check bool) "top" false (DT.is_bot d);
  let b1 = mkbool "b" and x = mknum "x" in
  Alcotest.(check bool) "bot" true (DT.is_bot (DT.bottom [| b1 |] [| x |]))

let test_guard_bool () =
  let b1, _, _, d = setup () in
  let d_true = DT.guard_bool d b1 true in
  let can_f, can_t = DT.get_bool d_true b1 in
  Alcotest.(check bool) "forced true" true (can_t && not can_f);
  let d_false = DT.guard_bool d b1 false in
  let can_f, can_t = DT.get_bool d_false b1 in
  Alcotest.(check bool) "forced false" true (can_f && not can_t);
  (* guarding both ways is empty *)
  Alcotest.(check bool) "contradiction" true
    (DT.is_bot (DT.guard_bool d_true b1 false))

let test_assign_bool_const () =
  let b1, _, _, d = setup () in
  let d = DT.assign_bool_const d b1 true in
  let can_f, can_t = DT.get_bool d b1 in
  Alcotest.(check bool) "assigned" true (can_t && not can_f);
  (* re-assignment forgets the previous value *)
  let d = DT.assign_bool_const d b1 false in
  let can_f, can_t = DT.get_bool d b1 in
  Alcotest.(check bool) "reassigned" true (can_f && not can_t)

let test_assign_num_per_leaf () =
  let b1, _, x, d = setup () in
  (* under b1: x := 1; under !b1: x := 5 — via split on b1 then assigns *)
  let d_t = DT.assign_num (DT.guard_bool d b1 true) x (fun _ _ -> I.int_const 1) in
  let d_f = DT.assign_num (DT.guard_bool d b1 false) x (fun _ _ -> I.int_const 5) in
  let j = DT.join d_t d_f in
  (match DT.get_num j x with
  | Some i -> Alcotest.(check bool) "overall" true (I.equal i (I.int_range 1 5))
  | None -> Alcotest.fail "no num");
  (* restricted to b1 = true, x is exactly 1: the relation survived the
     join — this is the whole point of the domain *)
  let restricted = DT.guard_bool j b1 true in
  match DT.get_num restricted x with
  | Some i -> Alcotest.(check bool) "related" true (I.equal i (I.int_const 1))
  | None -> Alcotest.fail "no num after guard"

let test_split_assignment () =
  (* b := (x == 0) with x in [0, 10]: the b=false branch refines x >= 1 *)
  let b1, _, x, d = setup () in
  let d = DT.assign_num d x (fun _ _ -> I.int_range 0 10) in
  let d =
    DT.assign_bool_split d b1 (fun _ leaf ->
        match leaf with
        | None -> (None, None)
        | Some m ->
            let xi = Option.value (VarMap.find_opt x m) ~default:(I.int_range 0 10) in
            let t = I.meet xi (I.int_const 0) in
            let f = I.refine_ne xi (I.int_const 0) in
            ( (if I.is_bot t then None else Some (VarMap.add x t m)),
              if I.is_bot f then None else Some (VarMap.add x f m) ))
  in
  let under_false = DT.guard_bool d b1 false in
  (match DT.get_num under_false x with
  | Some i -> Alcotest.(check bool) "x >= 1" true (I.equal i (I.int_range 1 10))
  | None -> Alcotest.fail "no refinement");
  let under_true = DT.guard_bool d b1 true in
  match DT.get_num under_true x with
  | Some i -> Alcotest.(check bool) "x = 0" true (I.equal i (I.int_const 0))
  | None -> Alcotest.fail "no refinement"

let test_join_shares_equal_branches () =
  let b1, _, x, d = setup () in
  (* a tree that branches but has equal leaves collapses *)
  let d1 = DT.assign_num (DT.guard_bool d b1 true) x (fun _ _ -> I.int_const 3) in
  let d2 = DT.assign_num (DT.guard_bool d b1 false) x (fun _ _ -> I.int_const 3) in
  let j = DT.join d1 d2 in
  Alcotest.(check int) "collapsed to a leaf" 1 (DT.size j)

let test_forget_bool () =
  let b1, _, x, d = setup () in
  let d_t = DT.assign_num (DT.guard_bool d b1 true) x (fun _ _ -> I.int_const 1) in
  let d_f = DT.assign_num (DT.guard_bool d b1 false) x (fun _ _ -> I.int_const 5) in
  let j = DT.join d_t d_f in
  let f = DT.forget_bool j b1 in
  let can_f, can_t = DT.get_bool f b1 in
  Alcotest.(check bool) "both possible" true (can_f && can_t);
  match DT.get_num f x with
  | Some i -> Alcotest.(check bool) "hull" true (I.equal i (I.int_range 1 5))
  | None -> Alcotest.fail "lost x"

let test_forget_num () =
  let b1, _, x, d = setup () in
  let d = DT.assign_num (DT.guard_bool d b1 true) x (fun _ _ -> I.int_const 1) in
  let f = DT.forget_num d x in
  Alcotest.(check bool) "forgotten" true (DT.get_num f x = None)

let test_widen_narrow () =
  let _, _, x, d = setup () in
  let d1 = DT.assign_num d x (fun _ _ -> I.int_range 0 10) in
  let d2 = DT.assign_num d x (fun _ _ -> I.int_range 0 15) in
  let w = DT.widen ~thresholds:(D.Thresholds.of_list [ 100.0 ]) d1 d2 in
  (match DT.get_num w x with
  | Some (I.Int (0, 100)) -> ()
  | Some i -> Alcotest.failf "unexpected %a" I.pp i
  | None -> Alcotest.fail "missing");
  Alcotest.(check bool) "subset" true (DT.subset d1 w && DT.subset d2 w)

let test_two_bools_paths () =
  let b1, b2, x, d = setup () in
  (* x = 1 iff b1 && b2 *)
  let d11 = DT.guard_bool (DT.guard_bool d b1 true) b2 true in
  let d11 = DT.assign_num d11 x (fun _ _ -> I.int_const 1) in
  let dother = DT.join (DT.guard_bool d b1 false) (DT.guard_bool d b2 false) in
  let dother = DT.assign_num dother x (fun _ _ -> I.int_const 0) in
  let j = DT.join d11 dother in
  let sel = DT.guard_bool (DT.guard_bool j b1 true) b2 true in
  match DT.get_num sel x with
  | Some i -> Alcotest.(check bool) "path value" true (I.equal i (I.int_const 1))
  | None -> Alcotest.fail "missing"

let suite =
  [
    Alcotest.test_case "top/bottom" `Quick test_top_bot;
    Alcotest.test_case "boolean guard" `Quick test_guard_bool;
    Alcotest.test_case "boolean constant assignment" `Quick test_assign_bool_const;
    Alcotest.test_case "per-leaf numeric assignment" `Quick test_assign_num_per_leaf;
    Alcotest.test_case "splitting boolean assignment" `Quick test_split_assignment;
    Alcotest.test_case "sharing of equal branches" `Quick test_join_shares_equal_branches;
    Alcotest.test_case "forget boolean" `Quick test_forget_bool;
    Alcotest.test_case "forget numeric" `Quick test_forget_num;
    Alcotest.test_case "widen/narrow" `Quick test_widen_narrow;
    Alcotest.test_case "two-boolean paths" `Quick test_two_bools_paths;
  ]
