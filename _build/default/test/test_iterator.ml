(* Iterator tests (Sect. 5.3-5.5, 7.1): control-flow outcomes, loop
   strategies, polyvariant calls, return accumulation, partitioning —
   each cross-checked against the concrete interpreter where sensible. *)

module C = Astree_core
module F = Astree_frontend

let alarms ?(cfg = C.Config.default) src =
  C.Analysis.n_alarms (C.Analysis.analyze_string ~cfg src)

let proves src = Alcotest.(check int) "proved" 0 (alarms src)
let refutes src = Alcotest.(check bool) "alarmed" true (alarms src > 0)

let runs_concretely src =
  let ast = F.Parser.parse_string ~file:"<t>" src in
  let p = F.Typecheck.elab_program ast in
  match F.Interp.run ~max_ticks:200 p with
  | F.Interp.Finished -> ()
  | F.Interp.Error (k, l) ->
      Alcotest.failf "concrete error %a at %a" F.Interp.pp_error_kind k
        F.Loc.pp l

(* break / continue flows -------------------------------------------- *)

let break_src =
  {|
volatile int n;
int found;
int main(void) {
  __astree_input_range(n, 0.0, 9.0);
  found = 0;
  while (1) {
    int i;
    int target;
    target = n;
    i = 0;
    while (i < 10) {
      if (i == target) { found = i; break; }
      i = i + 1;
    }
    __astree_assert(found >= 0 && found <= 9);
    __astree_assert(i <= 10);
    __astree_wait_for_clock();
  }
  return 0;
}
|}

let test_break () =
  proves break_src;
  runs_concretely break_src

let continue_src =
  {|
volatile int n;
int sum;
int main(void) {
  __astree_input_range(n, 0.0, 9.0);
  sum = 0;
  while (1) {
    int i;
    i = 0;
    sum = 0;
    while (i < 10) {
      i = i + 1;
      if (i == 5) { continue; }
      sum = sum + 1;
    }
    __astree_assert(sum <= 10);
    __astree_wait_for_clock();
  }
  return 0;
}
|}

let test_continue () =
  proves continue_src;
  runs_concretely continue_src

let nested_src =
  {|
int total;
int main(void) {
  total = 0;
  while (1) {
    int i; int j; int acc;
    acc = 0;
    i = 0;
    while (i < 5) {
      j = 0;
      while (j < 4) {
        acc = acc + 1;
        j = j + 1;
      }
      i = i + 1;
    }
    __astree_assert(i == 5);
    __astree_assert(acc == 20);
    total = acc;
    __astree_wait_for_clock();
  }
  return 0;
}
|}

let test_nested_loops () =
  (* acc == 20 needs the affine relation acc = 4*i, beyond octagons:
     with the default strategy the assertion raises a (false) alarm;
     fully unrolling the two bounded inner loops (per-loop factors,
     Sect. 7.1.1) proves it exactly *)
  Alcotest.(check bool) "default strategy cannot" true (alarms nested_src > 0);
  let cfg =
    {
      C.Config.default with
      C.Config.loop_unroll_overrides = [ (1, 5); (2, 4) ];
    }
  in
  Alcotest.(check int) "full unrolling proves acc == 20" 0
    (alarms ~cfg nested_src)

let test_do_while () =
  proves
    {|
int k;
int main(void) {
  while (1) {
    int i;
    i = 0;
    do { i = i + 1; } while (i < 3);
    __astree_assert(i >= 1 && i <= 3);
    k = i;
    __astree_wait_for_clock();
  }
  return 0;
}
|}

let test_for_loop_bound () =
  (* s == 16 needs s = 2*i; fully unrolling the bounded for-loop
     (Sect. 7.1.1) makes the analysis exact *)
  let src =
    {|
int out;
int main(void) {
  while (1) {
    int i; int s;
    s = 0;
    for (i = 0; i < 8; i = i + 1) { s = s + 2; }
    __astree_assert(i == 8);
    __astree_assert(s == 16);
    out = s;
    __astree_wait_for_clock();
  }
  return 0;
}
|}
  in
  let cfg =
    { C.Config.default with C.Config.loop_unroll_overrides = [ (1, 8) ] }
  in
  Alcotest.(check int) "full unrolling proves s == 16" 0 (alarms ~cfg src)

(* returns and side effects ------------------------------------------ *)

let test_early_return_env () =
  (* the environment at the return statement is accumulated with the
     fall-through environment (Sect. 5.4) *)
  proves
    {|
int g;
int pick(int c) {
  g = 1;
  if (c > 0) { g = 2; return 10; }
  g = 3;
  return 20;
}
volatile int vc;
int r;
int main(void) {
  __astree_input_range(vc, -5.0, 5.0);
  while (1) {
    r = pick(vc);
    /* r == 10 || r == 20 is a disjunction of points, outside intervals */
    __astree_assert(r >= 10 && r <= 20);
    __astree_assert(g >= 2 && g <= 3);
    __astree_wait_for_clock();
  }
  return 0;
}
|}

let test_side_effect_through_reference () =
  proves
    {|
void bump(int *p, int by) { *p = *p + by; }
int counter;
int main(void) {
  counter = 0;
  while (1) {
    bump(&counter, 2);
    if (counter > 100) { counter = 0; }
    __astree_assert(counter <= 102);
    __astree_wait_for_clock();
  }
  return 0;
}
|}

let test_call_in_condition () =
  proves
    {|
volatile int v;
int threshold(void) { return 50; }
int hits;
int main(void) {
  __astree_input_range(v, 0.0, 100.0);
  hits = 0;
  while (1) {
    if (v > threshold()) { hits = hits + 1; }
    __astree_wait_for_clock();
  }
  return 0;
}
|}

let test_void_function () =
  proves
    {|
float st;
void reset(void) { st = 0.0f; }
int main(void) {
  st = 5.0f;
  while (1) {
    reset();
    __astree_assert(st >= 0.0f && st <= 0.0f);
    __astree_wait_for_clock();
  }
  return 0;
}
|}

(* partitioning inside functions with inner control flow -------------- *)

let test_partitioned_function_with_inner_if () =
  let src =
    {|
volatile float w;
float out;
void sel(void) {
  float den; float num;
  float x;
  x = w;
  if (x < -1.0f) { den = -2.0f; num = 1.0f; }
  else { if (x > 1.0f) { den = 2.0f; num = 1.0f; } else { den = 1.0f; num = 0.0f; } }
  out = num / den;
}
int main(void) {
  __astree_input_range(w, -10.0, 10.0);
  out = 0.0f;
  while (1) { sel(); __astree_wait_for_clock(); }
  return 0;
}
|}
  in
  let part =
    { C.Config.default with C.Config.partitioned_functions = [ "sel" ] }
  in
  Alcotest.(check int) "partitioned proves" 0 (alarms ~cfg:part src);
  Alcotest.(check bool) "merged alarms" true (alarms src > 0)

let test_partition_cap () =
  (* many branches in a partitioned function: the partition bound keeps
     the trace count finite and the result sound *)
  let src =
    {|
volatile int s;
float y;
void f(void) {
  float a;
  a = 1.0f;
  if (s == 1) { a = 2.0f; }
  if (s == 2) { a = 3.0f; }
  if (s == 3) { a = 4.0f; }
  if (s == 4) { a = 5.0f; }
  if (s == 5) { a = 6.0f; }
  y = 100.0f / a;
}
int main(void) {
  __astree_input_range(s, 0.0, 5.0);
  y = 0.0f;
  while (1) { f(); __astree_wait_for_clock(); }
  return 0;
}
|}
  in
  let cfg =
    {
      C.Config.default with
      C.Config.partitioned_functions = [ "f" ];
      max_partitions = 4;
    }
  in
  Alcotest.(check int) "still precise enough" 0 (alarms ~cfg src)

(* widening / narrowing edges ----------------------------------------- *)

let test_narrowing_recovers_overshoot () =
  (* the invariant parks at a widening threshold; the decreasing
     iterations must pull it back near the least fixpoint *)
  let src =
    {|
volatile float u;
float acc;
short reg;
int main(void) {
  __astree_input_range(u, -2.0, 2.0);
  acc = 0.0f;
  reg = 0;
  while (1) {
    acc = 0.5f * acc + u;
    reg = (short)(acc * 1000.0f);   /* needs |acc| <= ~32 */
    __astree_wait_for_clock();
  }
  return 0;
}
|}
  in
  proves src

let test_zero_iterations_loop () =
  proves
    {|
int x;
int main(void) {
  x = 0;
  while (1) {
    int i;
    i = 10;
    while (i < 10) { i = i + 1; x = 99; }
    __astree_assert(x == 0);
    __astree_wait_for_clock();
  }
  return 0;
}
|}

let test_loop_guard_exit_refinement () =
  proves
    {|
int last;
int main(void) {
  while (1) {
    int i;
    i = 0;
    while (i < 7) { i = i + 1; }
    __astree_assert(i == 7);
    last = i;
    __astree_wait_for_clock();
  }
  return 0;
}
|}

let test_unroll_override () =
  (* per-loop unrolling override through the config *)
  let src =
    {|
int x;
int main(void) {
  x = 0;
  while (1) {
    x = 1;
    __astree_wait_for_clock();
  }
  return 0;
}
|}
  in
  let cfg =
    { C.Config.default with C.Config.loop_unroll_overrides = [ (0, 3) ] }
  in
  Alcotest.(check int) "still sound" 0 (alarms ~cfg src)

let test_checking_mode_covers_loop_body () =
  (* alarms inside loop bodies are found by the extra checking pass *)
  refutes
    {|
volatile int d;
int y;
int main(void) {
  __astree_input_range(d, 0.0, 3.0);
  while (1) {
    y = 100 / d;      /* d may be 0 */
    __astree_wait_for_clock();
  }
  return 0;
}
|}

let suite =
  [
    Alcotest.test_case "break" `Quick test_break;
    Alcotest.test_case "continue" `Quick test_continue;
    Alcotest.test_case "nested loops" `Quick test_nested_loops;
    Alcotest.test_case "do-while" `Quick test_do_while;
    Alcotest.test_case "for-loop bound" `Quick test_for_loop_bound;
    Alcotest.test_case "early-return environments" `Quick test_early_return_env;
    Alcotest.test_case "reference side effects" `Quick test_side_effect_through_reference;
    Alcotest.test_case "call in condition" `Quick test_call_in_condition;
    Alcotest.test_case "void function" `Quick test_void_function;
    Alcotest.test_case "partitioned inner ifs" `Quick test_partitioned_function_with_inner_if;
    Alcotest.test_case "partition cap" `Quick test_partition_cap;
    Alcotest.test_case "narrowing recovers overshoot" `Quick test_narrowing_recovers_overshoot;
    Alcotest.test_case "zero-iteration loop" `Quick test_zero_iterations_loop;
    Alcotest.test_case "loop exit refinement" `Quick test_loop_guard_exit_refinement;
    Alcotest.test_case "per-loop unroll override" `Quick test_unroll_override;
    Alcotest.test_case "checking pass covers loop bodies" `Quick test_checking_mode_covers_loop_body;
  ]
