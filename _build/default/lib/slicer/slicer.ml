(** Backward program slicing from an alarm point (Sect. 3.3, after
    Weiser [34]).

    "If the slicing criterion is an alarm point, the extracted slice
    contains the computations that led to the alarm."  The paper also
    observes that classical data+control slices are prohibitively large
    and sketches *abstract slicing*: restrict the transitive closure to
    the variables "we lack information about".  Both variants are
    implemented: {!slice} is the classical one, {!abstract_slice} prunes
    the traversal with a caller-supplied "interesting variable"
    predicate (typically: the analyzer could not bound the variable). *)

module F = Astree_frontend
open F.Tast

type criterion = {
  c_loc : F.Loc.t;          (** the alarm point *)
  c_vars : var list option; (** restrict to these variables; None = all uses *)
}

type slice = {
  s_nodes : Depgraph.node list;  (** statements in the slice, program order *)
  s_vars : VarSet.t;             (** variables the slice tracks *)
}

let slice_size (s : slice) = List.length s.s_nodes

(* Generic backward closure: from the criterion statement, follow data
   dependences (defs of used variables) and control dependences, keeping
   only variables satisfying [keep]. *)
let backward (g : Depgraph.t) ~(keep : var -> bool) (crit : criterion) :
    slice =
  match Depgraph.node_at g crit.c_loc with
  | None -> { s_nodes = []; s_vars = VarSet.empty }
  | Some seed ->
      let in_slice = Hashtbl.create 64 in
      let tracked = ref VarSet.empty in
      let work = Queue.create () in
      let enqueue id = if not (Hashtbl.mem in_slice id) then begin
          Hashtbl.replace in_slice id ();
          Queue.push id work
        end
      in
      enqueue seed;
      (* initial variable set *)
      let seed_node = g.Depgraph.nodes.(seed) in
      let init_vars =
        match crit.c_vars with
        | Some vs -> VarSet.of_list vs
        | None -> seed_node.Depgraph.n_uses
      in
      tracked := VarSet.filter keep init_vars;
      while not (Queue.is_empty work) do
        let id = Queue.pop work in
        let n = g.Depgraph.nodes.(id) in
        (* control dependences *)
        List.iter enqueue n.Depgraph.n_ctrl;
        (* data dependences: defining sites of every tracked use *)
        let uses = VarSet.filter keep n.Depgraph.n_uses in
        tracked := VarSet.union !tracked uses;
        VarSet.iter
          (fun v -> List.iter enqueue (Depgraph.defs_of g v))
          uses
      done;
      let nodes =
        Array.to_list g.Depgraph.nodes
        |> List.filter (fun n -> Hashtbl.mem in_slice n.Depgraph.n_id)
      in
      { s_nodes = nodes; s_vars = !tracked }

(** Classical data+control backward slice. *)
let slice (g : Depgraph.t) (crit : criterion) : slice =
  backward g ~keep:(fun _ -> true) crit

(** Abstract slice: only follow the variables for which the analyzer
    lacks information ([interesting v] = true), per the paper's remark
    that "we can consider only the variables we lack information about
    (integer or floating point variables that may contain large values
    or boolean variables that may take any value according to the
    invariant)". *)
let abstract_slice (g : Depgraph.t) ~(interesting : var -> bool)
    (crit : criterion) : slice =
  backward g ~keep:interesting crit

(* one-line head of a statement (bodies are sliced separately) *)
let pp_stmt_head ppf (st : stmt) =
  match st.sdesc with
  | Sif (c, _, _) -> Fmt.pf ppf "if (%a) ..." F.Pp.pp_expr c
  | Swhile (_, c, _) -> Fmt.pf ppf "while (%a) ..." F.Pp.pp_expr c
  | _ -> F.Pp.pp_stmt ~indent:0 ppf st

let pp_slice ppf (s : slice) =
  List.iter
    (fun (n : Depgraph.node) ->
      Fmt.pf ppf "%a: [%s] %a@\n" F.Loc.pp n.Depgraph.n_stmt.sloc
        n.Depgraph.n_fun pp_stmt_head n.Depgraph.n_stmt)
    s.s_nodes
