(** Backward program slicing from an alarm point (Sect. 3.3, after
    Weiser): the slice contains the computations that led to the alarm.
    {!abstract_slice} is the paper's sketched refinement, restricting
    the closure to the variables the invariant says nothing useful
    about. *)

type criterion = {
  c_loc : Astree_frontend.Loc.t;  (** the alarm point *)
  c_vars : Astree_frontend.Tast.var list option;
      (** restrict to these variables; [None] = all uses *)
}

type slice = {
  s_nodes : Depgraph.node list;  (** statements, in program order *)
  s_vars : Astree_frontend.Tast.VarSet.t;  (** variables tracked *)
}

val slice_size : slice -> int

(** Classical data+control backward slice. *)
val slice : Depgraph.t -> criterion -> slice

(** Abstract slice: follow only the [interesting] variables ("integer or
    floating point variables that may contain large values or boolean
    variables that may take any value according to the invariant"). *)
val abstract_slice :
  Depgraph.t ->
  interesting:(Astree_frontend.Tast.var -> bool) ->
  criterion ->
  slice

val pp_slice : Format.formatter -> slice -> unit
