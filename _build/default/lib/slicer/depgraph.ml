(** Data and control dependences over the typed IR, the substrate of the
    backward slicer used in the alarm-inspection process (Sect. 3.3). *)

module F = Astree_frontend
open F.Tast

(** A slicing node: one statement, identified by its position. *)
type node = {
  n_id : int;
  n_stmt : stmt;
  n_fun : string;
  n_defs : VarSet.t;   (** variables possibly written *)
  n_uses : VarSet.t;   (** variables possibly read *)
  n_ctrl : int list;   (** ids of the statements controlling this one *)
}

type t = {
  nodes : node array;
  by_loc : (F.Loc.t, int) Hashtbl.t;
  mutable def_sites : (int, int list) Hashtbl.t;  (** var id -> node ids *)
}

let stmt_defs (s : stmt) : VarSet.t =
  match s.sdesc with
  | Sassign (lv, _) -> VarSet.singleton (lval_root lv)
  | Slocal (v, _) -> VarSet.singleton v
  | Scall (dst, _, args) ->
      let base =
        match dst with Some v -> VarSet.singleton v | None -> VarSet.empty
      in
      List.fold_left
        (fun acc -> function
          | Aref lv -> VarSet.add (lval_root lv) acc
          | Aval _ -> acc)
        base args
  | _ -> VarSet.empty

let stmt_uses (s : stmt) : VarSet.t =
  match s.sdesc with
  | Sassign (lv, e) ->
      (* subscript expressions of the written lvalue are uses too *)
      let rec lv_uses (lv : lval) acc =
        match lv.ldesc with
        | Lvar _ | Lderef _ -> acc
        | Lindex (b, i) -> lv_uses b (expr_vars i acc)
        | Lfield (b, _) -> lv_uses b acc
      in
      lv_uses lv (expr_vars e VarSet.empty)
  | Slocal (_, Some e) -> expr_vars e VarSet.empty
  | Scall (_, _, args) ->
      List.fold_left
        (fun acc -> function
          | Aval e -> expr_vars e acc
          | Aref lv -> lval_vars lv acc)
        VarSet.empty args
  | Sif (c, _, _) | Swhile (_, c, _) -> expr_vars c VarSet.empty
  | Sreturn (Some e) | Sassert e | Sassume e -> expr_vars e VarSet.empty
  | _ -> VarSet.empty

(** Build the dependence graph of a program (intraprocedural control
    dependences; data dependences are variable-level and flow-insensitive,
    a sound over-approximation that keeps slices conservative). *)
let build (p : program) : t =
  let nodes = ref [] in
  let next = ref 0 in
  let by_loc = Hashtbl.create 256 in
  let add_node fn ctrl (s : stmt) : int =
    let id = !next in
    next := id + 1;
    let n =
      {
        n_id = id;
        n_stmt = s;
        n_fun = fn;
        n_defs = stmt_defs s;
        n_uses = stmt_uses s;
        n_ctrl = ctrl;
      }
    in
    nodes := n :: !nodes;
    if not (Hashtbl.mem by_loc s.sloc) then Hashtbl.replace by_loc s.sloc id;
    id
  in
  let rec do_block fn ctrl (b : block) : unit =
    List.iter
      (fun (s : stmt) ->
        let id = add_node fn ctrl s in
        match s.sdesc with
        | Sif (_, a, b') ->
            do_block fn (id :: ctrl) a;
            do_block fn (id :: ctrl) b'
        | Swhile (_, _, body) -> do_block fn (id :: ctrl) body
        | _ -> ())
      b
  in
  List.iter (fun (fn, fd) -> do_block fn [] fd.fd_body) p.p_funs;
  let nodes = Array.of_list (List.rev !nodes) in
  let def_sites = Hashtbl.create 256 in
  Array.iter
    (fun n ->
      VarSet.iter
        (fun v ->
          let cur = Option.value (Hashtbl.find_opt def_sites v.v_id) ~default:[] in
          Hashtbl.replace def_sites v.v_id (n.n_id :: cur))
        n.n_defs)
    nodes;
  { nodes; by_loc; def_sites }

let node_at (g : t) (loc : F.Loc.t) : int option = Hashtbl.find_opt g.by_loc loc

let defs_of (g : t) (v : var) : int list =
  Option.value (Hashtbl.find_opt g.def_sites v.v_id) ~default:[]

let size (g : t) = Array.length g.nodes
