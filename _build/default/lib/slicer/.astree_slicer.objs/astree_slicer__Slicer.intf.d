lib/slicer/slicer.mli: Astree_frontend Depgraph Format
