lib/slicer/depgraph.mli: Astree_frontend Hashtbl
