lib/slicer/depgraph.ml: Array Astree_frontend Hashtbl List Option VarSet
