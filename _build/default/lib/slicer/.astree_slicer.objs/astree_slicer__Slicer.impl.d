lib/slicer/slicer.ml: Array Astree_frontend Depgraph Fmt Hashtbl List Queue VarSet
