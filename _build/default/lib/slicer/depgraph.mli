(** Data and control dependences over the typed IR, the substrate of the
    backward slicer (Sect. 3.3). *)

type node = {
  n_id : int;
  n_stmt : Astree_frontend.Tast.stmt;
  n_fun : string;
  n_defs : Astree_frontend.Tast.VarSet.t;  (** variables possibly written *)
  n_uses : Astree_frontend.Tast.VarSet.t;  (** variables possibly read *)
  n_ctrl : int list;  (** ids of the statements controlling this one *)
}

type t = {
  nodes : node array;
  by_loc : (Astree_frontend.Loc.t, int) Hashtbl.t;
  mutable def_sites : (int, int list) Hashtbl.t;
}

val stmt_defs : Astree_frontend.Tast.stmt -> Astree_frontend.Tast.VarSet.t
val stmt_uses : Astree_frontend.Tast.stmt -> Astree_frontend.Tast.VarSet.t

(** Build the dependence graph (intraprocedural control dependences,
    variable-level flow-insensitive data dependences — a sound
    over-approximation that keeps slices conservative). *)
val build : Astree_frontend.Tast.program -> t

val node_at : t -> Astree_frontend.Loc.t -> int option
val defs_of : t -> Astree_frontend.Tast.var -> int list
val size : t -> int
