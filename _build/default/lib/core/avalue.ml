(** Per-cell abstract values: the reduction of the basic arithmetic
    domains attached to one abstract cell (Sect. 6.1: "an abstract value
    in an abstract cell is therefore the reduction of the abstract values
    provided by each different basic abstract domain").

    Concretely a value is a {!Astree_domains.Clocked.t} triple
    (v, v-clock, v+clock); when the clocked domain is disabled the two
    clock components are kept at [Bot], which the clocked reduction
    treats as "no information". *)

module F = Astree_frontend
module D = Astree_domains

type t = D.Clocked.t

let bot : t = D.Clocked.bot

let is_bot (v : t) = D.Clocked.is_bot v

(** The plain interval view. *)
let itv (v : t) : D.Itv.t = D.Clocked.to_itv v

(** Build from an interval.  With the clocked domain enabled the clock
    components are initialized from the current clock range; otherwise
    they stay at no-information. *)
let of_itv ~(use_clocked : bool) ~(clock : D.Itv.t) (i : D.Itv.t) : t =
  if D.Itv.is_bot i then bot
  else if use_clocked then D.Clocked.of_itv i clock
  else { D.Clocked.v = i; vminus = D.Itv.Bot; vplus = D.Itv.Bot }

(** Replace the interval component, keeping clock relations only when
    [keep_clock] (used by guard refinements, which shrink the value
    without invalidating clock offsets). *)
let with_itv (v : t) (i : D.Itv.t) : t =
  if D.Itv.is_bot i then bot else { v with D.Clocked.v = i }

(** Interval of every possible value of a scalar type. *)
let top_of_scalar (tgt : F.Ctypes.target) (s : F.Ctypes.scalar) : D.Itv.t =
  match s with
  | F.Ctypes.Tint (r, sg) -> D.Itv.of_int_type tgt r sg
  | F.Ctypes.Tfloat k -> D.Itv.of_float_kind k

let join = D.Clocked.join
let meet = D.Clocked.meet
let widen = D.Clocked.widen
let narrow = D.Clocked.narrow
let subset = D.Clocked.subset
let equal = D.Clocked.equal
let reduce = D.Clocked.reduce
let tick = D.Clocked.tick
let add_const = D.Clocked.add_const

let pp = D.Clocked.pp
