(** Census of the main loop invariant (Sect. 9.4.1).

    The paper dumps the main loop invariant (a textual file over 4.5 Mb)
    and counts: 6,900 boolean interval assertions, 9,600 interval
    assertions, 25,400 clock assertions, 19,100 additive and 19,200
    subtractive octagonal assertions, 100 decision trees and 1,900
    ellipsoidal assertions, involving over 16,000 floating-point
    constants.  This module computes the same census for a saved loop
    invariant, which experiment E4 compares in *shape* against the
    paper. *)

module F = Astree_frontend
module D = Astree_domains

type t = {
  c_bool_assertions : int;      (** x in [0,1] on boolean cells *)
  c_interval_assertions : int;  (** x in [a,b], non-trivial, non-boolean *)
  c_clock_assertions : int;     (** non-trivial v-clock / v+clock components *)
  c_oct_additive : int;         (** a <= x + y <= b *)
  c_oct_subtractive : int;      (** a <= x - y <= b *)
  c_decision_trees : int;       (** live decision-tree branching nodes *)
  c_ellipsoid_assertions : int;
  c_float_constants : int;      (** distinct fp constants in the dump *)
}

let is_trivial_itv (a : Transfer.actx) (c : Cell.t) (i : D.Itv.t) : bool =
  let full = Avalue.top_of_scalar a.Transfer.prog.F.Tast.p_target c.Cell.cty in
  match (i, full) with
  | D.Itv.Bot, _ -> false
  | _ -> D.Itv.subset full i

let census (a : Transfer.actx) (st : Astate.t) : t =
  let bools = ref 0 and itvs = ref 0 and clocks = ref 0 in
  let floats : (float, unit) Hashtbl.t = Hashtbl.create 256 in
  let note_float f =
    if Float.abs f <> Float.infinity && not (Float.is_nan f) then
      Hashtbl.replace floats f ()
  in
  let note_itv (i : D.Itv.t) =
    match i with
    | D.Itv.Float (lo, hi) ->
        note_float lo;
        note_float hi
    | D.Itv.Int (lo, hi) ->
        if lo > min_int then note_float (float_of_int lo);
        if hi < max_int then note_float (float_of_int hi)
    | D.Itv.Bot -> ()
  in
  Env.iter
    (fun id (av : Avalue.t) ->
      let c = Cell.of_id a.Transfer.intern id in
      let i = Avalue.itv av in
      (* every boolean cell carries the assertion x in [0,1] (the paper
         counts 6,900 of them for ~7k boolean variables); numerical
         cells only count when their interval is non-trivial *)
      if F.Ctypes.is_bool (F.Ctypes.Tscalar c.Cell.cty) then begin
        if not (D.Itv.is_bot i) then incr bools
      end
      else if not (is_trivial_itv a c i) then begin
        note_itv i;
        incr itvs
      end;
      if not (D.Itv.is_bot av.D.Clocked.vminus) then begin
        incr clocks;
        note_itv av.D.Clocked.vminus
      end;
      if not (D.Itv.is_bot av.D.Clocked.vplus) then begin
        incr clocks;
        note_itv av.D.Clocked.vplus
      end)
    st.Astate.env;
  let rel = Relstate.census st.Astate.rel in
  Ptmap.iter
    (fun _ o ->
      Array.iter
        (fun v ->
          match D.Octagon.get_bounds o v with
          | Some (lo, hi) ->
              note_float lo;
              note_float hi
          | None -> ())
        o.D.Octagon.pack)
    st.Astate.rel.Relstate.octs;
  {
    c_bool_assertions = !bools;
    c_interval_assertions = !itvs;
    c_clock_assertions = !clocks;
    c_oct_additive = rel.Relstate.oct_sum_constraints;
    c_oct_subtractive = rel.Relstate.oct_diff_constraints;
    c_decision_trees = rel.Relstate.dtree_assertions;
    c_ellipsoid_assertions = rel.Relstate.ellipsoid_constraints;
    c_float_constants = Hashtbl.length floats;
  }

(** Census of the invariant of the program's outermost loop (the main
    synchronous loop), i.e. the loop with the smallest id in [main]. *)
let main_loop_census (r : Analysis.result) : t option =
  let invs =
    Hashtbl.fold
      (fun id st acc -> (id, st) :: acc)
      r.Analysis.r_actx.Transfer.invariants []
  in
  match List.sort (fun (a, _) (b, _) -> Int.compare a b) invs with
  | (_, st) :: _ -> Some (census r.Analysis.r_actx st)
  | [] -> None

let pp ppf (c : t) =
  Fmt.pf ppf
    "boolean interval assertions: %d@\ninterval assertions: %d@\n\
     clock assertions: %d@\nadditive octagonal assertions: %d@\n\
     subtractive octagonal assertions: %d@\ndecision trees: %d@\n\
     ellipsoidal assertions: %d@\nfloating-point constants: %d"
    c.c_bool_assertions c.c_interval_assertions c.c_clock_assertions
    c.c_oct_additive c.c_oct_subtractive c.c_decision_trees
    c.c_ellipsoid_assertions c.c_float_constants
