(** Census of a loop invariant, by assertion kind (Sect. 9.4.1): the
    paper counts 6,900 boolean, 9,600 interval, 25,400 clock, 19,100
    additive and 19,200 subtractive octagonal assertions, 100 decision
    trees and 1,900 ellipsoidal assertions in its main loop invariant. *)

type t = {
  c_bool_assertions : int;      (** x in [0,1] on boolean cells *)
  c_interval_assertions : int;  (** non-trivial, non-boolean x in [a,b] *)
  c_clock_assertions : int;     (** v-clock / v+clock components *)
  c_oct_additive : int;         (** a <= x + y <= b *)
  c_oct_subtractive : int;      (** a <= x - y <= b *)
  c_decision_trees : int;       (** live decision-tree branching nodes *)
  c_ellipsoid_assertions : int;
  c_float_constants : int;      (** distinct fp constants in the dump *)
}

(** Census of one abstract state. *)
val census : Transfer.actx -> Astate.t -> t

(** Census of the program's outermost (main synchronous) loop
    invariant. *)
val main_loop_census : Analysis.result -> t option

val pp : Format.formatter -> t -> unit
