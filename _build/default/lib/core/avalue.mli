(** Per-cell abstract values: the reduction of the basic arithmetic
    domains attached to one abstract cell (Sect. 6.1) — concretely a
    clocked triple whose value component is an interval. *)

type t = Astree_domains.Clocked.t

val bot : t
val is_bot : t -> bool

(** The plain interval view. *)
val itv : t -> Astree_domains.Itv.t

(** Build from an interval; with the clocked domain enabled the clock
    components are seeded from the current clock range. *)
val of_itv :
  use_clocked:bool -> clock:Astree_domains.Itv.t -> Astree_domains.Itv.t -> t

(** Replace the interval component, keeping the clock relations (used by
    guard refinements, which only shrink the value). *)
val with_itv : t -> Astree_domains.Itv.t -> t

(** Interval of every possible value of a scalar type. *)
val top_of_scalar :
  Astree_frontend.Ctypes.target -> Astree_frontend.Ctypes.scalar ->
  Astree_domains.Itv.t

val join : t -> t -> t
val meet : t -> t -> t
val widen : thresholds:Astree_domains.Thresholds.t -> t -> t -> t
val narrow : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool

(** Tighten the value from the clock components. *)
val reduce : Astree_domains.Itv.t -> t -> t

(** Effect of a clock tick (Sect. 6.2.1). *)
val tick : t -> t

(** Addition of a constant interval, preserving clock offsets. *)
val add_const : Astree_domains.Itv.t -> t -> t

val pp : Format.formatter -> t -> unit
