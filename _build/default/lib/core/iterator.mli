(** The iterator (Sect. 5.3–5.5): abstract execution by induction on the
    abstract syntax, with iteration and checking modes, least-fixpoint
    approximation with widening and narrowing, loop unrolling, trace
    partitioning and polyvariant function inlining. *)

(** Raised on programs outside the subset's analyzable fragment
    (recursion, calls to unknown functions, ...). *)
exception Analysis_error of string

(** Flow-separated analysis outcome of a statement or block; [o_norm]
    is a disjunction of abstract states (a singleton except under trace
    partitioning, Sect. 7.1.5). *)
type outcome = {
  o_norm : Astate.t list;
  o_brk : Astate.t;
  o_cont : Astate.t;
  o_ret : Astate.t;
  o_retv : Astree_domains.Itv.t;
}

val exec_stmt :
  Transfer.actx ->
  part:bool ->
  stack:string list ->
  Transfer.binds ->
  Astate.t list ->
  Astree_frontend.Tast.stmt ->
  outcome

val exec_block :
  Transfer.actx ->
  part:bool ->
  stack:string list ->
  Transfer.binds ->
  Astate.t list ->
  Astree_frontend.Tast.block ->
  outcome

(** Run the abstract interpreter from the program entry point, in
    checking mode (loops internally recompute their invariants in
    iteration mode first, Sect. 5.4); returns the program-exit state.
    Loop invariants are recorded in the context. *)
val run : Transfer.actx -> Astate.t
