(** Abstract cells (Sect. 6.1.1).

    Data structures are mapped to collections of cells: an atomic cell
    for each simple variable, one cell per element for expanded arrays,
    a single cell for shrunk (large) arrays, and one cell per field for
    records.  Whether an array is expanded or shrunk is decided from its
    size against [Config.expand_array_max]. *)

module F = Astree_frontend

type step =
  | Sfield of string  (** record field *)
  | Selem of int      (** element of an expanded array *)
  | Sall              (** the single cell of a shrunk array *)

type t = {
  root : F.Tast.var;
  path : step list;           (** from the root outward *)
  cty : F.Ctypes.scalar;      (** scalar type of the cell's contents *)
  weak : bool;                (** shrunk cells only admit weak updates *)
}

let compare_step (a : step) (b : step) =
  match (a, b) with
  | Sfield x, Sfield y -> String.compare x y
  | Selem x, Selem y -> Int.compare x y
  | Sall, Sall -> 0
  | Sfield _, _ -> -1
  | _, Sfield _ -> 1
  | Selem _, Sall -> -1
  | Sall, Selem _ -> 1

let compare (a : t) (b : t) =
  let c = F.Tast.Var.compare a.root b.root in
  if c <> 0 then c else List.compare compare_step a.path b.path

let equal a b = compare a b = 0

let pp_step ppf = function
  | Sfield f -> Fmt.pf ppf ".%s" f
  | Selem i -> Fmt.pf ppf "[%d]" i
  | Sall -> Fmt.string ppf "[*]"

let pp ppf (c : t) =
  Fmt.pf ppf "%s%a" c.root.F.Tast.v_name Fmt.(list ~sep:nop pp_step) c.path

let to_string c = Fmt.str "%a" pp c

let is_volatile (c : t) = c.root.F.Tast.v_volatile

(* ------------------------------------------------------------------ *)
(* Cell enumeration                                                    *)
(* ------------------------------------------------------------------ *)

(** All cells of a variable, given the structure table and the expansion
    bound.  [expand_array_max] implements the expanded/shrunk choice. *)
let cells_of_var ~(structs : (string * F.Ctypes.struct_def) list)
    ~(expand_array_max : int) (v : F.Tast.var) : t list =
  let rec go (ty : F.Ctypes.t) (path_rev : step list) (weak : bool) : t list =
    match ty with
    | F.Ctypes.Tscalar s ->
        [ { root = v; path = List.rev path_rev; cty = s; weak } ]
    | F.Ctypes.Tarray (elt, n) ->
        if n <= expand_array_max then
          List.concat
            (List.init n (fun i -> go elt (Selem i :: path_rev) weak))
        else go elt (Sall :: path_rev) true
    | F.Ctypes.Tstruct tag -> (
        match List.assoc_opt tag structs with
        | Some sd ->
            List.concat_map
              (fun (f, ft) -> go ft (Sfield f :: path_rev) weak)
              sd.F.Ctypes.fields
        | None -> [])
    | F.Ctypes.Tvoid -> []
    | F.Ctypes.Tptr _ -> [] (* pointer parameters carry no cells *)
  in
  go v.F.Tast.v_ty [] false

(* ------------------------------------------------------------------ *)
(* Interning                                                           *)
(* ------------------------------------------------------------------ *)

(** Cells are interned to dense integer ids so that environments can be
    Patricia trees (Sect. 6.1.2). *)
type interner = {
  tbl : (int * step list, int) Hashtbl.t;  (** (root id, path) -> cell id *)
  mutable rev : t array;                   (** cell id -> cell *)
  mutable next : int;
}

let make_interner () = { tbl = Hashtbl.create 1024; rev = [||]; next = 0 }

let intern (it : interner) (c : t) : int =
  let key = (c.root.F.Tast.v_id, c.path) in
  match Hashtbl.find_opt it.tbl key with
  | Some id -> id
  | None ->
      let id = it.next in
      it.next <- id + 1;
      Hashtbl.replace it.tbl key id;
      if id >= Array.length it.rev then begin
        let n = max 64 (2 * Array.length it.rev) in
        let a = Array.make n c in
        Array.blit it.rev 0 a 0 (Array.length it.rev);
        it.rev <- a
      end;
      it.rev.(id) <- c;
      id

let of_id (it : interner) (id : int) : t = it.rev.(id)

let count (it : interner) : int = it.next
