(** Little-endian Patricia trees over non-negative integer keys, with the
    short-cut evaluation of Sect. 6.1.2: physically identical subtrees
    are recognized in O(1), so binary operations on two environments
    that differ on a few cells run in time proportional to the number of
    differing cells. *)

type 'a t =
  | Empty
  | Leaf of int * 'a
  | Branch of int * int * 'a t * 'a t
      (** (prefix, branching bit, subtree-with-bit-0, subtree-with-bit-1) *)

val empty : 'a t
val is_empty : 'a t -> bool
val singleton : int -> 'a -> 'a t
val find_opt : int -> 'a t -> 'a option
val mem : int -> 'a t -> bool

(** [add k v t] returns [t] itself when [t] already maps [k] to
    (physically) [v]. *)
val add : int -> 'a -> 'a t -> 'a t

val remove : int -> 'a t -> 'a t
val cardinal : 'a t -> int
val iter : (int -> 'a -> unit) -> 'a t -> unit
val fold : (int -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
val map : ('a -> 'b) -> 'a t -> 'b t
val mapi : (int -> 'a -> 'b) -> 'a t -> 'b t
val filter_map : (int -> 'a -> 'b option) -> 'a t -> 'b t
val bindings : 'a t -> (int * 'a) list
val for_all : (int -> 'a -> bool) -> 'a t -> bool
val exists : (int -> 'a -> bool) -> 'a t -> bool

(** [union_idem f a b]: keys of either map, combined with [f] on both.
    REQUIREMENT for the short-cut: [f k v v] must be semantically [v]
    (true of joins, meets, widenings, narrowings). *)
val union_idem : (int -> 'a -> 'a -> 'a) -> 'a t -> 'a t -> 'a t

(** [inter_keys f a b]: keys present in both maps. *)
val inter_keys : (int -> 'a -> 'a -> 'a option) -> 'a t -> 'a t -> 'a t

(** [subset_by le a b]: every binding of [b] is dominated in [a]
    (missing keys of [b] are unconstrained; missing keys of [a] fail),
    with the physical short-cut. *)
val subset_by : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool

val equal_by : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
