(** Abstract cells (Sect. 6.1.1): an atomic cell per simple variable,
    one cell per element of an expanded array, one cell for a whole
    shrunk (large) array, one cell per record field. *)

type step =
  | Sfield of string  (** record field *)
  | Selem of int      (** element of an expanded array *)
  | Sall              (** the single cell of a shrunk array *)

type t = {
  root : Astree_frontend.Tast.var;
  path : step list;                       (** from the root outward *)
  cty : Astree_frontend.Ctypes.scalar;    (** scalar type of the contents *)
  weak : bool;                            (** shrunk: weak updates only *)
}

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val is_volatile : t -> bool

(** All cells of a variable; arrays larger than [expand_array_max] are
    shrunk into a single weak cell. *)
val cells_of_var :
  structs:(string * Astree_frontend.Ctypes.struct_def) list ->
  expand_array_max:int ->
  Astree_frontend.Tast.var ->
  t list

(** {1 Interning}

    Cells are interned to dense integer ids so that environments can be
    Patricia trees (Sect. 6.1.2). *)

type interner

val make_interner : unit -> interner
val intern : interner -> t -> int
val of_id : interner -> int -> t
val count : interner -> int
