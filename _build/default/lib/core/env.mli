(** Abstract environments: the memory abstract domain of Sect. 6.1,
    mapping interned cell ids to abstract values.

    The default representation is the sharable functional map of
    Sect. 6.1.2; a naive functional-array representation is kept for the
    E5 ablation, which reproduces the paper's observation that array
    environments are asymptotically slower ("the execution time was
    divided by seven"). *)

type t =
  | Shared of Avalue.t Ptmap.t
  | Naive of Avalue.t option array

(** [empty ~naive ~ncells]: fresh environment ([ncells] is a size hint
    for the naive representation). *)
val empty : naive:bool -> ncells:int -> t

val find : t -> int -> Avalue.t option
val set : t -> int -> Avalue.t -> t
val remove : t -> int -> t

(** Apply to every cell (used by the clock tick, Sect. 6.2.1). *)
val map_all : (Avalue.t -> Avalue.t) -> t -> t

val iter : (int -> Avalue.t -> unit) -> t -> unit
val fold : (int -> Avalue.t -> 'acc -> 'acc) -> t -> 'acc -> 'acc
val cardinal : t -> int

(** {1 Cell-wise lattice operations (Sect. 6.1.3)}

    Cells present on one side only are kept as-is. *)

val join : t -> t -> t
val meet : t -> t -> t
val widen : thresholds:Astree_domains.Thresholds.t -> t -> t -> t
val narrow : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool
