lib/core/packing.ml: Array Astree_domains Astree_frontend Config Fmt Hashtbl List Option Var VarSet
