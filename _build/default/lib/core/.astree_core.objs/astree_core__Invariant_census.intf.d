lib/core/invariant_census.mli: Analysis Astate Format Transfer
