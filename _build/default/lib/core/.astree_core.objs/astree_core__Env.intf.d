lib/core/env.mli: Astree_domains Avalue Ptmap
