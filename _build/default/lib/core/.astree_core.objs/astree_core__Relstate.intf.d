lib/core/relstate.mli: Astree_domains Astree_frontend Packing Ptmap
