lib/core/analysis.ml: Alarm Astate Astree_domains Astree_frontend Cell Config Fmt Hashtbl Int Iterator List Packing Transfer Unix
