lib/core/avalue.mli: Astree_domains Astree_frontend Format
