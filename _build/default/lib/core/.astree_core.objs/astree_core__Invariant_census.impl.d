lib/core/invariant_census.ml: Analysis Array Astate Astree_domains Astree_frontend Avalue Cell Env Float Fmt Hashtbl Int List Ptmap Relstate Transfer
