lib/core/invariant_dump.mli: Analysis Astate Format Transfer
