lib/core/relstate.ml: Array Astree_domains Astree_frontend List Packing Ptmap
