lib/core/cell.mli: Astree_frontend Format
