lib/core/config.ml: Astree_domains List
