lib/core/analysis.mli: Alarm Astate Astree_frontend Config Format Transfer
