lib/core/alarm.mli: Astree_frontend Format Hashtbl
