lib/core/iterator.mli: Astate Astree_domains Astree_frontend Transfer
