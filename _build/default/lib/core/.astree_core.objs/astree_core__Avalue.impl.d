lib/core/avalue.ml: Astree_domains Astree_frontend
