lib/core/env.ml: Array Astree_domains Avalue Option Ptmap
