lib/core/ptmap.ml:
