lib/core/cell.ml: Array Astree_frontend Fmt Hashtbl Int List String
