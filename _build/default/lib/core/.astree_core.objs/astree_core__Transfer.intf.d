lib/core/transfer.mli: Alarm Astate Astree_domains Astree_frontend Cell Config Hashtbl Packing
