lib/core/ptmap.mli:
