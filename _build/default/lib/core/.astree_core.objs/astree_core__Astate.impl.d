lib/core/astate.ml: Astree_domains Avalue Env Float_pert Relstate
