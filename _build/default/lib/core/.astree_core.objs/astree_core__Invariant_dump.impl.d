lib/core/invariant_dump.ml: Analysis Astate Astree_domains Astree_frontend Avalue Buffer Cell Env Fmt Hashtbl Int List Ptmap Relstate String Transfer
