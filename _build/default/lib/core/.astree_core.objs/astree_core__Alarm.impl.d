lib/core/alarm.ml: Astree_frontend Fmt Hashtbl List Stdlib
