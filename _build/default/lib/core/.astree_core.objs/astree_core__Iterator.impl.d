lib/core/iterator.ml: Alarm Astate Astree_domains Astree_frontend Avalue Cell Config Env Fmt Hashtbl List Relstate Sys Transfer VarMap
