lib/core/packing.mli: Astree_frontend Config
