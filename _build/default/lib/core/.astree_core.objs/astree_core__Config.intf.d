lib/core/config.mli: Astree_domains
