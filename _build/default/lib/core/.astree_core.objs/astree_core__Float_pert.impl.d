lib/core/float_pert.ml: Astree_domains Float
