lib/core/astate.mli: Astree_domains Env Relstate
