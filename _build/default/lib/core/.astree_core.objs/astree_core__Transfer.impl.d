lib/core/transfer.ml: Alarm Array Astate Astree_domains Astree_frontend Avalue Cell Config Env Float Fmt Hashtbl Int List Option Packing Ptmap Relstate Var VarMap VarSet
