(** Textual dump of loop invariants (Sect. 5.3, 9.4.1: the paper's main
    loop invariant dump is "a textual file over 4.5 Mb"). *)

(** Dump one abstract state's assertions. *)
val dump_state : Transfer.actx -> Format.formatter -> Astate.t -> unit

(** Dump every recorded loop invariant. *)
val to_string : Analysis.result -> string

(** Write the dump to a file; returns its size in bytes. *)
val to_file : Analysis.result -> string -> int
