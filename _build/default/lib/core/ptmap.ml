(** Little-endian Patricia trees over non-negative integer keys, with the
    short-cut evaluation of Sect. 6.1.2.

    "We chose to implement abstract environments using functional maps
    implemented as sharable balanced binary trees, with short-cut
    evaluation when computing the abstract union, abstract intersection,
    widening or narrowing of physically identical subtrees."

    Patricia trees make the short-cut especially effective: the tree
    shape is canonical (determined by the key set alone), so two
    environments that differ on a few cells share all other subtrees
    physically, and the binary operations below return in time
    proportional to the number of *differing* cells. *)

type 'a t =
  | Empty
  | Leaf of int * 'a
  | Branch of int * int * 'a t * 'a t
      (** [(prefix, branching_bit, subtree-with-bit-0, subtree-with-bit-1)] *)

let empty = Empty

let is_empty = function Empty -> true | _ -> false

let singleton k v = Leaf (k, v)

(* bit twiddling *)
let zero_bit k m = k land m = 0
let lowest_bit x = x land -x
let mask k m = k land (m - 1)
let match_prefix k p m = mask k m = p
let branching_bit p0 p1 = lowest_bit (p0 lxor p1)

let rec find_opt k = function
  | Empty -> None
  | Leaf (j, v) -> if j = k then Some v else None
  | Branch (p, m, l, r) ->
      if not (match_prefix k p m) then None
      else if zero_bit k m then find_opt k l
      else find_opt k r

let mem k t = find_opt k t <> None

let join p0 t0 p1 t1 =
  let m = branching_bit p0 p1 in
  if zero_bit p0 m then Branch (mask p0 m, m, t0, t1)
  else Branch (mask p0 m, m, t1, t0)

let rec add k v = function
  | Empty -> Leaf (k, v)
  | Leaf (j, old) as t ->
      if j = k then if old == v then t else Leaf (k, v)
      else join k (Leaf (k, v)) j t
  | Branch (p, m, l, r) as t ->
      if match_prefix k p m then
        if zero_bit k m then
          let l' = add k v l in
          if l' == l then t else Branch (p, m, l', r)
        else
          let r' = add k v r in
          if r' == r then t else Branch (p, m, l, r')
      else join k (Leaf (k, v)) p t

let branch p m l r =
  match (l, r) with Empty, t | t, Empty -> t | _ -> Branch (p, m, l, r)

let rec remove k = function
  | Empty -> Empty
  | Leaf (j, _) as t -> if j = k then Empty else t
  | Branch (p, m, l, r) as t ->
      if match_prefix k p m then
        if zero_bit k m then
          let l' = remove k l in
          if l' == l then t else branch p m l' r
        else
          let r' = remove k r in
          if r' == r then t else branch p m l r'
      else t

let rec cardinal = function
  | Empty -> 0
  | Leaf _ -> 1
  | Branch (_, _, l, r) -> cardinal l + cardinal r

let rec iter f = function
  | Empty -> ()
  | Leaf (k, v) -> f k v
  | Branch (_, _, l, r) ->
      iter f l;
      iter f r

let rec fold f t acc =
  match t with
  | Empty -> acc
  | Leaf (k, v) -> f k v acc
  | Branch (_, _, l, r) -> fold f r (fold f l acc)

let rec map f = function
  | Empty -> Empty
  | Leaf (k, v) -> Leaf (k, f v)
  | Branch (p, m, l, r) -> Branch (p, m, map f l, map f r)

let rec mapi f = function
  | Empty -> Empty
  | Leaf (k, v) -> Leaf (k, f k v)
  | Branch (p, m, l, r) -> Branch (p, m, mapi f l, mapi f r)

let rec filter_map f = function
  | Empty -> Empty
  | Leaf (k, v) -> ( match f k v with Some v' -> Leaf (k, v') | None -> Empty)
  | Branch (p, m, l, r) -> branch p m (filter_map f l) (filter_map f r)

let bindings t = fold (fun k v acc -> (k, v) :: acc) t []

let rec for_all p = function
  | Empty -> true
  | Leaf (k, v) -> p k v
  | Branch (_, _, l, r) -> for_all p l && for_all p r

let rec exists p = function
  | Empty -> false
  | Leaf (k, v) -> p k v
  | Branch (_, _, l, r) -> exists p l || exists p r

(* ------------------------------------------------------------------ *)
(* Binary operations with physical-equality short-cuts                 *)
(* ------------------------------------------------------------------ *)

(** [union_idem f a b]: keys present in either map; on keys present in
    both, the value is [f k va vb].  REQUIREMENT for the short-cut: [f]
    must be idempotent-on-equal, i.e. [f k v v] is (semantically) [v].
    Physically identical subtrees are returned unchanged in O(1): this
    is the Sect. 6.1.2 sub-linear abstract union. *)
let rec union_idem (f : int -> 'a -> 'a -> 'a) (s : 'a t) (t : 'a t) : 'a t =
  if s == t then s
  else
    match (s, t) with
    | Empty, t -> t
    | s, Empty -> s
    | Leaf (k, v), t -> (
        match find_opt k t with
        | Some w ->
            let u = f k v w in
            if u == w then t else add k u t
        | None -> add k v t)
    | s, Leaf (k, w) -> (
        match find_opt k s with
        | Some v ->
            let u = f k v w in
            if u == v then s else add k u s
        | None -> add k w s)
    | Branch (p, m, s0, s1), Branch (q, n, t0, t1) ->
        if m = n && p = q then begin
          let l = union_idem f s0 t0 and r = union_idem f s1 t1 in
          if l == s0 && r == s1 then s
          else if l == t0 && r == t1 then t
          else Branch (p, m, l, r)
        end
        else if m < n && match_prefix q p m then
          if zero_bit q m then
            let l = union_idem f s0 t in
            if l == s0 then s else Branch (p, m, l, s1)
          else
            let r = union_idem f s1 t in
            if r == s1 then s else Branch (p, m, s0, r)
        else if m > n && match_prefix p q n then
          if zero_bit p n then
            let l = union_idem f s t0 in
            if l == t0 then t else Branch (q, n, l, t1)
          else
            let r = union_idem f s t1 in
            if r == t1 then t else Branch (q, n, t0, r)
        else join p s q t

(** [inter_keys f a b]: keys present in BOTH maps, combined with [f].
    Same idempotence requirement and short-cut as {!union_idem}. *)
let rec inter_keys (f : int -> 'a -> 'a -> 'a option) (s : 'a t) (t : 'a t) :
    'a t =
  if s == t then s
  else
    match (s, t) with
    | Empty, _ | _, Empty -> Empty
    | Leaf (k, v), t -> (
        match find_opt k t with
        | Some w -> ( match f k v w with Some u -> Leaf (k, u) | None -> Empty)
        | None -> Empty)
    | s, Leaf (k, w) -> (
        match find_opt k s with
        | Some v -> ( match f k v w with Some u -> Leaf (k, u) | None -> Empty)
        | None -> Empty)
    | Branch (p, m, s0, s1), Branch (q, n, t0, t1) ->
        if m = n && p = q then begin
          let l = inter_keys f s0 t0 and r = inter_keys f s1 t1 in
          if l == s0 && r == s1 then s else branch p m l r
        end
        else if m < n && match_prefix q p m then
          inter_keys f (if zero_bit q m then s0 else s1) t
        else if m > n && match_prefix p q n then
          inter_keys f s (if zero_bit p n then t0 else t1)
        else Empty

(** [subset_by le a b]: true when every key of [b] is in [a] with
    [le va vb] — the pointwise abstract inclusion used by the iterator's
    stabilization check, with the physical short-cut.  Keys missing in
    [b] are unconstrained (top); keys missing in [a] fail. *)
let rec subset_by (le : 'a -> 'a -> bool) (s : 'a t) (t : 'a t) : bool =
  if s == t then true
  else
    match (s, t) with
    | _, Empty -> true
    | Empty, _ -> false
    | Leaf (k, v), t ->
        (* every binding of t must be over key k with le v *)
        for_all (fun j w -> j = k && le v w) t
    | s, Leaf (k, w) -> (
        match find_opt k s with Some v -> le v w | None -> false)
    | Branch (p, m, s0, s1), Branch (q, n, t0, t1) ->
        if m = n && p = q then subset_by le s0 t0 && subset_by le s1 t1
        else if m < n && match_prefix q p m then
          subset_by le (if zero_bit q m then s0 else s1) t
        else if m > n && match_prefix p q n then
          (* t splits below s: check both halves of t against s *)
          subset_by le s t0 && subset_by le s t1
        else false

let rec equal_by (eq : 'a -> 'a -> bool) (s : 'a t) (t : 'a t) : bool =
  s == t
  ||
  match (s, t) with
  | Empty, Empty -> true
  | Leaf (k, v), Leaf (j, w) -> k = j && eq v w
  | Branch (p, m, s0, s1), Branch (q, n, t0, t1) ->
      p = q && m = n && equal_by eq s0 t0 && equal_by eq s1 t1
  | _ -> false
