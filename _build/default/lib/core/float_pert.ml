(** Relative enlargement of float bounds for the floating iteration
    perturbation of Sect. 7.1.4: F-hat([a, b]) = [a' - eps|a'|, b' + eps|b'|]. *)

let up (eps : float) (b : float) : float =
  if Float.abs b = Float.infinity then b
  else Astree_domains.Float_utils.round_up (b +. (eps *. Float.abs b))

let down (eps : float) (a : float) : float =
  if Float.abs a = Float.infinity then a
  else Astree_domains.Float_utils.round_down (a -. (eps *. Float.abs a))
