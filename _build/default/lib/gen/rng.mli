(** Deterministic pseudo-random numbers (splitmix64) for the synthetic
    program-family generator: the experiments must regenerate the exact
    same programs across runs. *)

type t

val make : int -> t
val next_int64 : t -> int64

(** Uniform in [0, n). *)
val int : t -> int -> int

(** Uniform in [lo, hi]. *)
val range : t -> int -> int -> int

(** Uniform in [0, 1). *)
val float : t -> float

val float_range : t -> float -> float -> float
val bool : t -> bool
val choose : t -> 'a list -> 'a
