(** Code shapes of the synthetic program family.

    Each shape instantiates, with fresh names and randomized constants,
    one of the idioms the paper attributes to the analyzed fly-by-wire
    family (Sect. 4, 6.2.2–6.2.4, 7.1.5, 10):

    - event counters gated by the clock (clocked domain, Sect. 6.2.1),
    - second-order digital filters (Fig. 1, ellipsoid domain),
    - rate limiters (octagon domain, the Sect. 6.2.2 fragment),
    - boolean relay logic in the "store the test, retrieve it later"
      style of the code generator (decision trees, Sect. 6.2.4, 10),
    - interpolation tables scanned with clamped indices (Sect. 7.1.5),
    - clamped integrators and first-order lags (widening thresholds and
      delayed widening, Sect. 7.1.2–7.1.3),
    - large "hardware description" arrays (shrunk cells, Sect. 6.1.1),
    - mode switches and structured channels.

    All constants are chosen so that every instance is free of run-time
    errors — analyzable with zero alarms by a sufficiently precise
    analyzer, like the paper's 10-year-in-service reference program.
    [Buggy] variants inject one real defect each, used by the test suite
    to check that true errors are reported. *)

type instance = {
  globals : string list;  (** global declaration lines *)
  inputs : (string * float * float) list;  (** volatile input ranges *)
  init : string list;     (** statements for main, before the loop *)
  fn : string list;       (** function definition lines *)
  call : string;          (** call statement for the loop body *)
}

let f32 (x : float) : string =
  (* a float literal that round-trips through binary32 *)
  Fmt.str "%.9gf" (Int32.float_of_bits (Int32.bits_of_float x))

(* ------------------------------------------------------------------ *)

(** Event counter bounded by the operating time (Sect. 6.2.1). *)
let counter (r : Rng.t) (i : int) : instance =
  let ev = Fmt.str "ev_%d" i and cnt = Fmt.str "cnt_%d" i in
  let with_reset = Rng.bool r in
  let limit = Rng.range r 1000 100000 in
  {
    globals =
      [ Fmt.str "volatile _Bool %s;" ev; Fmt.str "int %s;" cnt ];
    inputs = [ (ev, 0.0, 1.0) ];
    init = [ Fmt.str "%s = 0;" cnt ];
    fn =
      [
        Fmt.str "void shape_%d(void) {" i;
        Fmt.str "  if (%s) { %s = %s + 1; }" ev cnt cnt;
      ]
      @ (if with_reset then
           [ Fmt.str "  if (%s > %d) { %s = 0; }" cnt limit cnt ]
         else [])
      @ [ "}" ];
    call = Fmt.str "shape_%d();" i;
  }

(** Second-order digital filter (Fig. 1; ellipsoid domain, Sect. 6.2.3).
    Randomly single- or double-precision: the ellipsoid's delta function
    must absorb the rounding of either kind. *)
let filter (r : Rng.t) (i : int) : instance =
  let b = Rng.float_range r 0.5 0.88 in
  (* |a| < 2 sqrt(b), kept well inside the ellipse condition *)
  let a = Rng.float_range r 0.3 (1.6 *. sqrt b) in
  let a = if Rng.bool r then a else -.a in
  let amp = Rng.float_range r 0.5 2.0 in
  let dbl = Rng.int r 4 = 0 in
  let ty = if dbl then "double" else "float" in
  let lit = if dbl then fun x -> Fmt.str "%.17g" x else f32 in
  let zero = if dbl then "0.0" else "0.0f" in
  let fin = Fmt.str "fin_%d" i
  and rst = Fmt.str "rst_%d" i
  and fx = Fmt.str "fx_%d" i
  and fy = Fmt.str "fy_%d" i in
  {
    globals =
      [
        Fmt.str "volatile %s %s;" ty fin;
        Fmt.str "volatile _Bool %s;" rst;
        Fmt.str "%s %s;" ty fx;
        Fmt.str "%s %s;" ty fy;
      ];
    inputs = [ (fin, -.amp, amp); (rst, 0.0, 1.0) ];
    init = [ Fmt.str "%s = %s;" fx zero; Fmt.str "%s = %s;" fy zero ];
    fn =
      [
        Fmt.str "void shape_%d(void) {" i;
        Fmt.str "  %s t;" ty;
        Fmt.str "  t = %s;" fin;
        Fmt.str "  if (%s) {" rst;
        Fmt.str "    %s = t;" fy;
        Fmt.str "    %s = t;" fx;
        "  } else {";
        Fmt.str "    %s x2;" ty;
        Fmt.str "    x2 = %s * %s - %s * %s + t;" (lit a) fx (lit b) fy;
        Fmt.str "    %s = %s;" fy fx;
        Fmt.str "    %s = x2;" fx;
        "  }";
        "}";
      ];
    call = Fmt.str "shape_%d();" i;
  }

(** Rate limiter (the octagon fragment of Sect. 6.2.2). *)
let rate_limiter (r : Rng.t) (i : int) : instance =
  let amp = float_of_int (Rng.range r 50 500) in
  let step = Rng.float_range r 0.5 4.0 in
  let rin = Fmt.str "rin_%d" i
  and vcal = Fmt.str "rv_%d" i
  and z = Fmt.str "rz_%d" i
  and l = Fmt.str "rl_%d" i
  and out = Fmt.str "rout_%d" i in
  (* the paper's exact fragment (Sect. 6.2.2):
       R := X - Z;  L := X;  if (R > V) L := Z + V;
     with Z the previous output; the limited value then feeds a 16-bit
     actuator register, whose conversion is provable only through the
     octagon invariant c <= L - Z <= d ("proves that subsequent
     operations on L will not overflow") *)
  let scale = 30000.0 /. (amp +. (4.0 *. step) +. 8.0) in
  {
    globals =
      [ Fmt.str "volatile float %s;" rin;
        Fmt.str "volatile float %s;" vcal;
        Fmt.str "float %s;" z;
        Fmt.str "float %s;" l;
        Fmt.str "short %s;" out ];
    inputs = [ (rin, -.amp, amp); (vcal, 0.0, step) ];
    init =
      [ Fmt.str "%s = 0.0f;" z; Fmt.str "%s = 0.0f;" l;
        Fmt.str "%s = 0;" out ];
    fn =
      [
        Fmt.str "void shape_%d(void) {" i;
        "  float rr;";
        "  float x;";
        "  float v;";
        Fmt.str "  x = %s;" rin;
        Fmt.str "  v = %s;" vcal;
        Fmt.str "  rr = x - %s;" z;
        Fmt.str "  %s = x;" l;
        Fmt.str "  if (rr > v) { %s = %s + v; }" l z;
        Fmt.str "  %s = %s;" z l;
        Fmt.str "  %s = (short)(%s * %s);" out (f32 scale) l;
        "}";
      ];
    call = Fmt.str "shape_%d();" i;
  }

(** Boolean relay logic with a guarded division (Sect. 6.2.4, 10). *)
let relay (r : Rng.t) (i : int) : instance =
  let hi = Rng.range r 10 200 in
  let bx = Fmt.str "bx_%d" i
  and bz = Fmt.str "bz_%d" i
  and bv = Fmt.str "bv_%d" i
  and res = Fmt.str "bres_%d" i in
  {
    globals =
      [
        Fmt.str "volatile int %s;" bx;
        Fmt.str "_Bool %s;" bz;
        Fmt.str "_Bool %s;" bv;
        Fmt.str "float %s;" res;
      ];
    inputs = [ (bx, 0.0, float_of_int hi) ];
    init = [ Fmt.str "%s = 0.0f;" res ];
    fn =
      [
        Fmt.str "void shape_%d(void) {" i;
        "  int x;";
        Fmt.str "  x = %s;" bx;
        (* the generated-code style: one test, stored, retrieved later *)
        Fmt.str "  %s = (x == 0);" bz;
        Fmt.str "  %s = (x > %d);" bv (hi / 2);
        Fmt.str "  if (%s) { %s = 1.0f; } else { %s = 0.5f; }" bv res res;
        Fmt.str "  if (!%s) { %s = %s / (float)x; }" bz res res;
        "}";
      ];
    call = Fmt.str "shape_%d();" i;
  }

(** Interpolation table with clamped index (Sect. 7.1.5 workloads). *)
let interpolation (r : Rng.t) (i : int) : instance =
  let n = Rng.range r 6 12 in
  let table =
    List.init n (fun k ->
        f32 (float_of_int k +. Rng.float_range r 0.0 1.0))
  in
  let ix = Fmt.str "ix_%d" i
  and tab = Fmt.str "itab_%d" i
  and iy = Fmt.str "iy_%d" i in
  {
    globals =
      [
        Fmt.str "const float %s[%d] = {%s};" tab n (String.concat ", " table);
        Fmt.str "volatile float %s;" ix;
        Fmt.str "float %s;" iy;
      ];
    inputs = [ (ix, 0.0, float_of_int (n - 1)) ];
    init = [ Fmt.str "%s = 0.0f;" iy ];
    fn =
      [
        Fmt.str "void shape_%d(void) {" i;
        "  float x;";
        "  int k;";
        "  float fr;";
        Fmt.str "  x = %s;" ix;
        "  k = (int)x;";
        "  if (k < 0) { k = 0; }";
        Fmt.str "  if (k > %d) { k = %d; }" (n - 2) (n - 2);
        "  fr = x - (float)k;";
        Fmt.str "  %s = %s[k] + (%s[k+1] - %s[k]) * fr;" iy tab tab tab;
        "}";
      ];
    call = Fmt.str "shape_%d();" i;
  }

(** Leaky integrator: bounded by the threshold widening (Sect. 7.1.2). *)
let integrator (r : Rng.t) (i : int) : instance =
  let alpha = Rng.float_range r 0.5 0.95 in
  let u = Rng.float_range r 0.5 5.0 in
  let gu = Fmt.str "gu_%d" i and gx = Fmt.str "gx_%d" i in
  {
    globals = [ Fmt.str "volatile float %s;" gu; Fmt.str "float %s;" gx ];
    inputs = [ (gu, -.u, u) ];
    init = [ Fmt.str "%s = 0.0f;" gx ];
    fn =
      [
        Fmt.str "void shape_%d(void) {" i;
        Fmt.str "  %s = %s * %s + %s;" gx (f32 alpha) gx gu;
        "}";
      ];
    call = Fmt.str "shape_%d();" i;
  }

(** First-order lag pair: the delayed-widening example of Sect. 7.1.3
    (X := Y + gamma; Y := alpha * X + delta). *)
let lag (r : Rng.t) (i : int) : instance =
  let alpha = Rng.float_range r 0.5 0.9 in
  let gamma = Rng.float_range r 0.1 2.0 in
  let u = Rng.float_range r 0.5 3.0 in
  let lx = Fmt.str "lx_%d" i
  and ly = Fmt.str "ly_%d" i
  and lu = Fmt.str "lu_%d" i in
  {
    globals =
      [
        Fmt.str "float %s;" lx;
        Fmt.str "float %s;" ly;
        Fmt.str "volatile float %s;" lu;
      ];
    inputs = [ (lu, -.u, u) ];
    init = [ Fmt.str "%s = 0.0f;" lx; Fmt.str "%s = 0.0f;" ly ];
    fn =
      [
        Fmt.str "void shape_%d(void) {" i;
        Fmt.str "  %s = %s + %s;" lx ly (f32 gamma);
        Fmt.str "  %s = %s * %s + %s;" ly (f32 alpha) lx lu;
        "}";
      ];
    call = Fmt.str "shape_%d();" i;
  }

(** Large hardware-description array, shrunk to one cell (Sect. 6.1.1). *)
let hw_array (r : Rng.t) (i : int) : instance =
  let n = 128 + (Rng.int r 3 * 64) in
  let seed = f32 (Rng.float_range r 1.0 10.0) in
  let tab = Fmt.str "htab_%d" i
  and idx = Fmt.str "hidx_%d" i
  and out = Fmt.str "hval_%d" i in
  {
    globals =
      [
        Fmt.str "float %s[%d] = {%s, %s};" tab n seed seed;
        Fmt.str "volatile int %s;" idx;
        Fmt.str "float %s;" out;
      ];
    inputs = [ (idx, 0.0, float_of_int (n - 1)) ];
    init = [ Fmt.str "%s = 0.0f;" out ];
    fn =
      [
        Fmt.str "void shape_%d(void) {" i;
        "  int k;";
        Fmt.str "  k = %s;" idx;
        "  if (k < 0) { k = 0; }";
        Fmt.str "  if (k > %d) { k = %d; }" (n - 1) (n - 1);
        Fmt.str "  %s = %s[k];" out tab;
        "}";
      ];
    call = Fmt.str "shape_%d();" i;
  }

(** Mode switch (exercises the switch desugaring and enums). *)
let mode_switch (r : Rng.t) (i : int) : instance =
  let modes = Rng.range r 3 5 in
  let md = Fmt.str "mode_%d" i and out = Fmt.str "mout_%d" i in
  let cases =
    List.init modes (fun k ->
        Fmt.str "    case %d: %s = %s; break;" k out
          (f32 (float_of_int k *. 0.25)))
  in
  {
    globals = [ Fmt.str "volatile int %s;" md; Fmt.str "float %s;" out ];
    inputs = [ (md, 0.0, float_of_int (modes - 1)) ];
    init = [ Fmt.str "%s = 0.0f;" out ];
    fn =
      [ Fmt.str "void shape_%d(void) {" i; Fmt.str "  switch (%s) {" md ]
      @ cases
      @ [ Fmt.str "    default: %s = 0.0f; break;" out; "  }"; "}" ];
    call = Fmt.str "shape_%d();" i;
  }

(** Structured measurement channel with validity flag. *)
let channel (r : Rng.t) (i : int) : instance =
  let amp = float_of_int (Rng.range r 20 100) in
  let sname = Fmt.str "chan_%d" i
  and g = Fmt.str "ch_%d" i
  and cin = Fmt.str "cin_%d" i in
  {
    globals =
      [
        Fmt.str "struct %s { float val; _Bool ok; };" sname;
        Fmt.str "struct %s %s;" sname g;
        Fmt.str "volatile float %s;" cin;
      ];
    inputs = [ (cin, -.amp *. 2.0, amp *. 2.0) ];
    init = [ Fmt.str "%s.val = 0.0f;" g; Fmt.str "%s.ok = 0;" g ];
    fn =
      [
        Fmt.str "void shape_%d(void) {" i;
        Fmt.str "  %s.val = %s;" g cin;
        Fmt.str "  %s.ok = (%s.val > -%s) && (%s.val < %s);" g g (f32 amp) g
          (f32 amp);
        Fmt.str "  if (%s.ok) { %s.val = %s.val * 0.5f; }" g g g;
        "}";
      ];
    call = Fmt.str "shape_%d();" i;
  }

(** Chained boolean relays (Sect. 7.2.3, 10): the generated code copies
    test results through several boolean variables before using them.
    The guarded division needs the 3-deep chain b3 := b2 := b1 := (x==0)
    related to x in one decision-tree pack, so a pack bound below 3 loses
    the proof; the extra "churn" copies b4.. only inflate packs (and
    analysis time) when the bound allows them in. *)
let relay_chain (r : Rng.t) (i : int) : instance =
  let hi = Rng.range r 20 200 in
  let churn = 5 in
  let b k = Fmt.str "cb%d_%d" k i in
  let x = Fmt.str "cbx_%d" i and res = Fmt.str "cbr_%d" i in
  {
    globals =
      Fmt.str "volatile int %s;" x
      :: Fmt.str "float %s;" res
      :: List.init (3 + churn) (fun k -> Fmt.str "_Bool %s;" (b (k + 1)));
    inputs = [ (x, 0.0, float_of_int hi) ];
    init = [ Fmt.str "%s = 0.0f;" res ];
    fn =
      [
        Fmt.str "void shape_%d(void) {" i;
        "  int v;";
        Fmt.str "  v = %s;" x;
        Fmt.str "  %s = (v == 0);" (b 1);
        Fmt.str "  %s = %s;" (b 2) (b 1);
        Fmt.str "  %s = %s;" (b 3) (b 2);
      ]
      @ List.init churn (fun k ->
            Fmt.str "  %s = %s;" (b (4 + k)) (b (3 + k)))
      @ [
          Fmt.str "  if (!%s) { %s = 100.0f / (float)v; }" (b 3) res;
          "}";
        ];
    call = Fmt.str "shape_%d();" i;
  }

(** Exponential decay written as X := X - c*X: precise only through the
    symbolic linearization of Sect. 6.3 (the paper's own example). *)
let decay (r : Rng.t) (i : int) : instance =
  let c = Rng.float_range r 0.1 0.4 in
  let amp = Rng.float_range r 0.5 2.0 in
  let dx = Fmt.str "dx_%d" i and du = Fmt.str "du_%d" i in
  let out = Fmt.str "dout_%d" i in
  {
    globals = [ Fmt.str "float %s;" dx; Fmt.str "volatile float %s;" du;
                Fmt.str "short %s;" out ];
    inputs = [ (du, -.amp, amp) ];
    init = [ Fmt.str "%s = 0.0f;" dx; Fmt.str "%s = 0;" out ];
    fn =
      [
        Fmt.str "void shape_%d(void) {" i;
        Fmt.str "  %s = %s + %s;" dx dx du;
        (* bottom-up interval evaluation of X - c*X loses the correlation
           between the two occurrences of X and diverges; the linear form
           (1-c)*X stays contracting *)
        Fmt.str "  %s = %s - %s * %s;" dx dx (f32 c) dx;
        Fmt.str "  %s = (short)(%s * 100.0f);" out dx;
        "}";
      ];
    call = Fmt.str "shape_%d();" i;
  }

(** Piecewise-defined slope followed by a division: safe on each branch,
    but the join loses the branch correlation; trace partitioning
    (Sect. 7.1.5) delays the merge past the division. *)
let piecewise (r : Rng.t) (i : int) : instance =
  let s1 = Rng.float_range r 1.0 4.0 in
  let s2 = -.Rng.float_range r 1.0 4.0 in
  let pin = Fmt.str "pin_%d" i and out = Fmt.str "pout_%d" i in
  {
    globals = [ Fmt.str "volatile float %s;" pin; Fmt.str "float %s;" out ];
    inputs = [ (pin, -10.0, 10.0) ];
    init = [ Fmt.str "%s = 0.0f;" out ];
    fn =
      [
        Fmt.str "void shape_%d(void) {" i;
        "  float s;";
        "  float o;";
        "  float x;";
        Fmt.str "  x = %s;" pin;
        Fmt.str "  if (x < 0.0f) { s = %s; o = 1.0f; } else { s = %s; o = 3.0f; }"
          (f32 s1) (f32 s2);
        Fmt.str "  %s = o / s;" out;
        "}";
      ];
    call = Fmt.str "shape_%d();" i;
  }

(* ------------------------------------------------------------------ *)
(* Buggy variants (for testing true-alarm detection)                   *)
(* ------------------------------------------------------------------ *)

(** Division whose divisor genuinely crosses zero. *)
let bug_division (r : Rng.t) (i : int) : instance =
  let hi = Rng.range r 10 100 in
  let x = Fmt.str "dbx_%d" i and y = Fmt.str "dby_%d" i in
  {
    globals = [ Fmt.str "volatile int %s;" x; Fmt.str "float %s;" y ];
    inputs = [ (x, 0.0, float_of_int hi) ];
    init = [ Fmt.str "%s = 0.0f;" y ];
    fn =
      [
        Fmt.str "void shape_%d(void) {" i;
        Fmt.str "  %s = 100.0f / (float)(%s - %d);" y x (hi / 2);
        "}";
      ];
    call = Fmt.str "shape_%d();" i;
  }

(** Array access with an unclamped index. *)
let bug_index (r : Rng.t) (i : int) : instance =
  let n = Rng.range r 4 16 in
  let tab = Fmt.str "obt_%d" i
  and idx = Fmt.str "obi_%d" i
  and out = Fmt.str "obo_%d" i in
  {
    globals =
      [
        Fmt.str "float %s[%d];" tab n;
        Fmt.str "volatile int %s;" idx;
        Fmt.str "float %s;" out;
      ];
    inputs = [ (idx, 0.0, float_of_int n) ] (* one past the end *);
    init = [ Fmt.str "%s = 0.0f;" out ];
    fn =
      [
        Fmt.str "void shape_%d(void) {" i;
        Fmt.str "  %s = %s[%s];" out tab idx;
        "}";
      ];
    call = Fmt.str "shape_%d();" i;
  }

(** Integrator with gain >= 1: genuinely diverges (overflow). *)
let bug_overflow (r : Rng.t) (i : int) : instance =
  let gu = Fmt.str "ofu_%d" i and gx = Fmt.str "ofx_%d" i in
  ignore r;
  {
    globals = [ Fmt.str "volatile float %s;" gu; Fmt.str "float %s;" gx ];
    inputs = [ (gu, 0.5, 1.0) ];
    init = [ Fmt.str "%s = 1.0f;" gx ];
    fn =
      [
        Fmt.str "void shape_%d(void) {" i;
        Fmt.str "  %s = %s * 2.0f + %s;" gx gx gu;
        "}";
      ];
    call = Fmt.str "shape_%d();" i;
  }

(* ------------------------------------------------------------------ *)

type kind =
  | Counter
  | Filter
  | Rate_limiter
  | Relay
  | Interpolation
  | Integrator
  | Lag
  | Hw_array
  | Mode_switch
  | Channel
  | Decay
  | Piecewise
  | Relay_chain
  | Bug_division
  | Bug_index
  | Bug_overflow

let all_safe_kinds =
  [ Counter; Filter; Rate_limiter; Relay; Interpolation; Integrator; Lag;
    Hw_array; Mode_switch; Channel; Decay; Piecewise ]

let all_bug_kinds = [ Bug_division; Bug_index; Bug_overflow ]

let instantiate (k : kind) (r : Rng.t) (i : int) : instance =
  match k with
  | Counter -> counter r i
  | Filter -> filter r i
  | Rate_limiter -> rate_limiter r i
  | Relay -> relay r i
  | Interpolation -> interpolation r i
  | Integrator -> integrator r i
  | Lag -> lag r i
  | Hw_array -> hw_array r i
  | Mode_switch -> mode_switch r i
  | Channel -> channel r i
  | Decay -> decay r i
  | Piecewise -> piecewise r i
  | Relay_chain -> relay_chain r i
  | Bug_division -> bug_division r i
  | Bug_index -> bug_index r i
  | Bug_overflow -> bug_overflow r i

let kind_name = function
  | Counter -> "counter"
  | Filter -> "filter"
  | Rate_limiter -> "rate-limiter"
  | Relay -> "relay"
  | Interpolation -> "interpolation"
  | Integrator -> "integrator"
  | Lag -> "lag"
  | Hw_array -> "hw-array"
  | Mode_switch -> "mode-switch"
  | Channel -> "channel"
  | Decay -> "decay"
  | Piecewise -> "piecewise"
  | Relay_chain -> "relay-chain"
  | Bug_division -> "bug-division"
  | Bug_index -> "bug-index"
  | Bug_overflow -> "bug-overflow"
