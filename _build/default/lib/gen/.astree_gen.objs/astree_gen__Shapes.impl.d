lib/gen/shapes.ml: Fmt Int32 List Rng String
