lib/gen/generator.ml: Array Buffer Fmt Hashtbl List Option Rng Shapes String
