lib/gen/rng.mli:
