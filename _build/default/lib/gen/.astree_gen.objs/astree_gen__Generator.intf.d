lib/gen/generator.mli: Shapes
