lib/gen/rng.ml: Int64 List
