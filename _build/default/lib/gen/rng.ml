(** Deterministic pseudo-random numbers (splitmix64) for the synthetic
    program-family generator.  Determinism matters: the experiments must
    regenerate the exact same programs across runs. *)

type t = { mutable state : int64 }

let make (seed : int) : t = { state = Int64.of_int seed }

let next_int64 (r : t) : int64 =
  r.state <- Int64.add r.state 0x9E3779B97F4A7C15L;
  let z = r.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform integer in [0, n). *)
let int (r : t) (n : int) : int =
  if n <= 0 then 0
  else Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 r) 1) (Int64.of_int n))

(** Uniform integer in [lo, hi]. *)
let range (r : t) (lo : int) (hi : int) : int = lo + int r (hi - lo + 1)

(** Uniform float in [0, 1). *)
let float (r : t) : float =
  Int64.to_float (Int64.shift_right_logical (next_int64 r) 11)
  *. 0x1.0p-53

(** Uniform float in [lo, hi]. *)
let float_range (r : t) (lo : float) (hi : float) : float =
  lo +. (float r *. (hi -. lo))

let bool (r : t) : bool = int r 2 = 0

(** Pick an element of a non-empty list. *)
let choose (r : t) (l : 'a list) : 'a = List.nth l (int r (List.length l))
