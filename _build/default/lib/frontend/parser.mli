(** Recursive-descent parser for the C subset (Sect. 5.1).  Unsupported
    constructs are rejected with an error message. *)

exception Error of string * Loc.t

(** Parse a token stream into a translation unit. *)
val parse_unit : file:string -> Token.spanned list -> Ast.unit_

(** Preprocess, lex and parse a source string. *)
val parse_string : ?env:Preproc.env -> file:string -> string -> Ast.unit_

(** Parse a single expression (testing / tooling helper). *)
val parse_expr_string : string -> Ast.expr
