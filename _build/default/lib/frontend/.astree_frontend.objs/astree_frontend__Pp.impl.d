lib/frontend/pp.ml: Ctypes Fmt List String Tast
