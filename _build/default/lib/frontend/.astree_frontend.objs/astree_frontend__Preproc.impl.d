lib/frontend/preproc.ml: Buffer Filename Fmt Lexer List Loc String Token
