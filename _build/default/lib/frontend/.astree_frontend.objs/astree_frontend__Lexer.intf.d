lib/frontend/lexer.mli: Loc Token
