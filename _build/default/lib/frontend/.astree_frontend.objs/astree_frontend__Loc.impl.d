lib/frontend/loc.ml: Fmt Int String
