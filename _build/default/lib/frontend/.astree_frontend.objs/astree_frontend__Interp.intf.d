lib/frontend/interp.mli: Format Loc Tast
