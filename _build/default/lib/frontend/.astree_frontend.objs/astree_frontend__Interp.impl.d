lib/frontend/interp.ml: Array Ctypes Float Fmt Hashtbl Int Int32 List Loc Option Tast Var
