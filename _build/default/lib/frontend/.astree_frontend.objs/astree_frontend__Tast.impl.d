lib/frontend/tast.ml: Ctypes Fmt Int List Loc Map Option Set
