lib/frontend/typecheck.ml: Ast Ctypes Float Fmt Hashtbl Int Int32 List Loc Option String Tast
