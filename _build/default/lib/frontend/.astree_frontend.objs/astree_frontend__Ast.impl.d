lib/frontend/ast.ml: Ctypes Fmt Loc
