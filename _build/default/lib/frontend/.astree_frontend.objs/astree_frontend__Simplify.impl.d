lib/frontend/simplify.ml: Ctypes Float Hashtbl Int32 List Tast VarSet
