lib/frontend/token.ml: Ctypes Fmt Loc
