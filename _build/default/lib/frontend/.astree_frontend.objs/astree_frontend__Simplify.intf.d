lib/frontend/simplify.mli: Tast
