lib/frontend/preproc.mli: Loc
