lib/frontend/parser.mli: Ast Loc Preproc Token
