lib/frontend/lexer.ml: Buffer Char Ctypes Fmt Int32 List Loc Scanf String Token
