lib/frontend/linker.ml: Ast Hashtbl List Parser Set String
