lib/frontend/linker.mli: Ast Preproc
