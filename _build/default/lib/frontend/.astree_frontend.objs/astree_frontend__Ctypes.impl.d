lib/frontend/ctypes.ml: Fmt String
