lib/frontend/typecheck.mli: Ast Ctypes Loc Tast
