lib/frontend/parser.ml: Array Ast Ctypes Fmt Hashtbl Lexer List Loc Preproc Token
