(** Recursive-descent parser for the C subset (Sect. 5.1).

    The analyzed family uses a reduced subset of C99 with restricted
    declarators (no function pointers, no multi-dimensional declarator
    tricks), which a hand-written predictive parser handles comfortably.
    Unsupported constructs are rejected with an error message, as the paper
    prescribes ("Unsupported constructs are rejected at this point"). *)

exception Error of string * Loc.t

type state = {
  toks : Token.spanned array;
  mutable pos : int;
  mutable typedefs : (string, unit) Hashtbl.t;
}

let make toks =
  { toks = Array.of_list toks; pos = 0; typedefs = Hashtbl.create 16 }

let cur st = st.toks.(st.pos).Token.tok
let cur_loc st = st.toks.(st.pos).Token.tloc

let lookahead st k =
  let i = st.pos + k in
  if i < Array.length st.toks then st.toks.(i).Token.tok else Token.EOF

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let error st msg = raise (Error (msg, cur_loc st))

let expect st tok =
  if cur st = tok then advance st
  else
    error st
      (Fmt.str "expected %a but found %a" Token.pp tok Token.pp (cur st))

let expect_ident st =
  match cur st with
  | Token.IDENT s ->
      advance st;
      s
  | t -> error st (Fmt.str "expected identifier, found %a" Token.pp t)

let is_typedef_name st s = Hashtbl.mem st.typedefs s

(* A token sequence starts a type if it is a type keyword, a known typedef
   name, or a qualifier. *)
let starts_type st =
  match cur st with
  | Token.KW_VOID | Token.KW_CHAR | Token.KW_SHORT | Token.KW_INT
  | Token.KW_LONG | Token.KW_FLOAT | Token.KW_DOUBLE | Token.KW_SIGNED
  | Token.KW_UNSIGNED | Token.KW_BOOL | Token.KW_STRUCT | Token.KW_ENUM
  | Token.KW_CONST | Token.KW_VOLATILE | Token.KW_STATIC | Token.KW_EXTERN
  | Token.KW_TYPEDEF ->
      true
  | Token.IDENT s -> is_typedef_name st s
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Type parsing                                                        *)
(* ------------------------------------------------------------------ *)

type specs = {
  mutable sp_storage : Ast.storage;
  mutable sp_volatile : bool;
  mutable sp_const : bool;
  mutable sp_typedef : bool;
}

(* Parse declaration specifiers: storage class, qualifiers and the base
   type.  Returns the base type expression and the collected specifiers. *)
let parse_specs st : Ast.type_expr * specs =
  let sp =
    { sp_storage = Ast.Sto_none; sp_volatile = false; sp_const = false;
      sp_typedef = false }
  in
  (* collect int-ish keywords to resolve multi-word types *)
  let signed = ref None in
  let rank = ref None in
  let base : Ast.type_expr option ref = ref None in
  let set_base b =
    match !base with
    | None -> base := Some b
    | Some _ -> error st "conflicting type specifiers"
  in
  let continue_ = ref true in
  while !continue_ do
    (match cur st with
    | Token.KW_STATIC -> sp.sp_storage <- Ast.Sto_static; advance st
    | Token.KW_EXTERN -> sp.sp_storage <- Ast.Sto_extern; advance st
    | Token.KW_TYPEDEF -> sp.sp_typedef <- true; advance st
    | Token.KW_CONST -> sp.sp_const <- true; advance st
    | Token.KW_VOLATILE -> sp.sp_volatile <- true; advance st
    | Token.KW_VOID -> set_base Ast.Tvoid_te; advance st
    | Token.KW_BOOL -> rank := Some Ctypes.Bool; advance st
    | Token.KW_CHAR -> rank := Some Ctypes.Char; advance st
    | Token.KW_SHORT -> rank := Some Ctypes.Short; advance st
    | Token.KW_INT ->
        (if !rank = None then rank := Some Ctypes.Int);
        advance st
    | Token.KW_LONG -> rank := Some Ctypes.Long; advance st
    | Token.KW_FLOAT -> set_base (Ast.Tbase (Ctypes.Tfloat Ctypes.Fsingle)); advance st
    | Token.KW_DOUBLE -> set_base (Ast.Tbase (Ctypes.Tfloat Ctypes.Fdouble)); advance st
    | Token.KW_SIGNED -> signed := Some Ctypes.Signed; advance st
    | Token.KW_UNSIGNED -> signed := Some Ctypes.Unsigned; advance st
    | Token.KW_STRUCT ->
        advance st;
        let tag = expect_ident st in
        set_base (Ast.Tstruct_te tag)
    | Token.KW_ENUM ->
        (* enumeration types, including the booleans, are considered to
           be integers (Sect. 6.1.1) *)
        advance st;
        (match cur st with
        | Token.IDENT _ -> advance st
        | _ -> ());
        set_base (Ast.Tbase (Ctypes.Tint (Ctypes.Int, Ctypes.Signed)))
    | Token.IDENT s
      when is_typedef_name st s && !base = None && !rank = None && !signed = None ->
        advance st;
        set_base (Ast.Tname s)
    | _ -> continue_ := false);
    if !base <> None && (!rank <> None || !signed <> None) then
      error st "conflicting type specifiers"
  done;
  let ty =
    match (!base, !rank, !signed) with
    | Some b, None, None -> b
    | None, Some r, s ->
        let sign =
          match s with
          | Some s -> s
          | None -> if r = Ctypes.Bool then Ctypes.Unsigned else Ctypes.Signed
        in
        Ast.Tbase (Ctypes.Tint (r, sign))
    | None, None, Some s -> Ast.Tbase (Ctypes.Tint (Ctypes.Int, s))
    | None, None, None -> error st "expected type specifier"
    | Some _, _, _ -> error st "conflicting type specifiers"
  in
  (ty, sp)

(* ------------------------------------------------------------------ *)
(* Expressions (precedence climbing)                                   *)
(* ------------------------------------------------------------------ *)

let mk_expr eloc edesc = { Ast.edesc; eloc }

let rec parse_expr st : Ast.expr = parse_comma st

and parse_comma st =
  let e = parse_assign st in
  match cur st with
  | Token.COMMA ->
      let l = cur_loc st in
      advance st;
      let e2 = parse_comma st in
      mk_expr l (Ast.Ecomma (e, e2))
  | _ -> e

and parse_assign st =
  let lhs = parse_cond st in
  let l = cur_loc st in
  let mk_op op =
    advance st;
    let rhs = parse_assign st in
    mk_expr l (Ast.Eassign_op (op, lhs, rhs))
  in
  match cur st with
  | Token.ASSIGN ->
      advance st;
      let rhs = parse_assign st in
      mk_expr l (Ast.Eassign (lhs, rhs))
  | Token.PLUSEQ -> mk_op Ast.Add
  | Token.MINUSEQ -> mk_op Ast.Sub
  | Token.STAREQ -> mk_op Ast.Mul
  | Token.SLASHEQ -> mk_op Ast.Div
  | Token.PERCENTEQ -> mk_op Ast.Mod
  | Token.AMPEQ -> mk_op Ast.Band
  | Token.BAREQ -> mk_op Ast.Bor
  | Token.CARETEQ -> mk_op Ast.Bxor
  | Token.LSHIFTEQ -> mk_op Ast.Shl
  | Token.RSHIFTEQ -> mk_op Ast.Shr
  | _ -> lhs

and parse_cond st =
  let c = parse_binary st 0 in
  match cur st with
  | Token.QUESTION ->
      let l = cur_loc st in
      advance st;
      let a = parse_assign st in
      expect st Token.COLON;
      let b = parse_cond st in
      mk_expr l (Ast.Econd (c, a, b))
  | _ -> c

(* binary operators by increasing precedence level *)
and binop_of_token = function
  | Token.BARBAR -> Some (Ast.Lor, 1)
  | Token.ANDAND -> Some (Ast.Land, 2)
  | Token.BAR -> Some (Ast.Bor, 3)
  | Token.CARET -> Some (Ast.Bxor, 4)
  | Token.AMP -> Some (Ast.Band, 5)
  | Token.EQEQ -> Some (Ast.Eq, 6)
  | Token.NEQ -> Some (Ast.Ne, 6)
  | Token.LT -> Some (Ast.Lt, 7)
  | Token.GT -> Some (Ast.Gt, 7)
  | Token.LE -> Some (Ast.Le, 7)
  | Token.GE -> Some (Ast.Ge, 7)
  | Token.LSHIFT -> Some (Ast.Shl, 8)
  | Token.RSHIFT -> Some (Ast.Shr, 8)
  | Token.PLUS -> Some (Ast.Add, 9)
  | Token.MINUS -> Some (Ast.Sub, 9)
  | Token.STAR -> Some (Ast.Mul, 10)
  | Token.SLASH -> Some (Ast.Div, 10)
  | Token.PERCENT -> Some (Ast.Mod, 10)
  | _ -> None

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match binop_of_token (cur st) with
    | Some (op, prec) when prec >= min_prec ->
        let l = cur_loc st in
        advance st;
        let rhs = parse_binary st (prec + 1) in
        lhs := mk_expr l (Ast.Ebinop (op, !lhs, rhs))
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st =
  let l = cur_loc st in
  match cur st with
  | Token.MINUS ->
      advance st;
      mk_expr l (Ast.Eunop (Ast.Neg, parse_unary st))
  | Token.PLUS ->
      advance st;
      parse_unary st
  | Token.BANG ->
      advance st;
      mk_expr l (Ast.Eunop (Ast.Lnot, parse_unary st))
  | Token.TILDE ->
      advance st;
      mk_expr l (Ast.Eunop (Ast.Bnot, parse_unary st))
  | Token.STAR ->
      advance st;
      mk_expr l (Ast.Ederef (parse_unary st))
  | Token.AMP ->
      advance st;
      mk_expr l (Ast.Eaddr (parse_unary st))
  | Token.PLUSPLUS ->
      advance st;
      mk_expr l (Ast.Epreincr (true, parse_unary st))
  | Token.MINUSMINUS ->
      advance st;
      mk_expr l (Ast.Epreincr (false, parse_unary st))
  | Token.KW_SIZEOF ->
      advance st;
      expect st Token.LPAREN;
      let te = parse_type_name st in
      expect st Token.RPAREN;
      mk_expr l (Ast.Esizeof te)
  | Token.LPAREN when starts_type_name st 1 ->
      advance st;
      let te = parse_type_name st in
      expect st Token.RPAREN;
      mk_expr l (Ast.Ecast (te, parse_unary st))
  | _ -> parse_postfix st

and starts_type_name st k =
  match lookahead st k with
  | Token.KW_VOID | Token.KW_CHAR | Token.KW_SHORT | Token.KW_INT
  | Token.KW_LONG | Token.KW_FLOAT | Token.KW_DOUBLE | Token.KW_SIGNED
  | Token.KW_UNSIGNED | Token.KW_BOOL | Token.KW_STRUCT | Token.KW_CONST ->
      true
  | Token.IDENT s -> is_typedef_name st s
  | _ -> false

(* a type name in a cast or sizeof: specs + optional stars *)
and parse_type_name st =
  let ty, _sp = parse_specs st in
  let ty = ref ty in
  while cur st = Token.STAR do
    advance st;
    ty := Ast.Tptr_te !ty
  done;
  !ty

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    let l = cur_loc st in
    match cur st with
    | Token.LBRACKET ->
        advance st;
        let i = parse_expr st in
        expect st Token.RBRACKET;
        e := mk_expr l (Ast.Eindex (!e, i))
    | Token.DOT ->
        advance st;
        let f = expect_ident st in
        e := mk_expr l (Ast.Efield (!e, f))
    | Token.ARROW ->
        advance st;
        let f = expect_ident st in
        e := mk_expr l (Ast.Earrow (!e, f))
    | Token.PLUSPLUS ->
        advance st;
        e := mk_expr l (Ast.Epostincr (true, !e))
    | Token.MINUSMINUS ->
        advance st;
        e := mk_expr l (Ast.Epostincr (false, !e))
    | _ -> continue_ := false
  done;
  !e

and parse_primary st =
  let l = cur_loc st in
  match cur st with
  | Token.INT_LIT (n, r, s) ->
      advance st;
      mk_expr l (Ast.Eint (n, r, s))
  | Token.FLOAT_LIT (f, k) ->
      advance st;
      mk_expr l (Ast.Efloat (f, k))
  | Token.CHAR_LIT c ->
      advance st;
      mk_expr l (Ast.Eint (c, Ctypes.Char, Ctypes.Signed))
  | Token.IDENT name -> (
      advance st;
      match cur st with
      | Token.LPAREN ->
          advance st;
          let args = ref [] in
          if cur st <> Token.RPAREN then begin
            args := [ parse_assign st ];
            while cur st = Token.COMMA do
              advance st;
              args := parse_assign st :: !args
            done
          end;
          expect st Token.RPAREN;
          mk_expr l (Ast.Ecall (name, List.rev !args))
      | _ -> mk_expr l (Ast.Evar name))
  | Token.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st Token.RPAREN;
      e
  | t -> error st (Fmt.str "expected expression, found %a" Token.pp t)

(* ------------------------------------------------------------------ *)
(* Declarators                                                         *)
(* ------------------------------------------------------------------ *)

(* Parse a declarator given the base type: stars, identifier, array
   suffixes.  Returns (name, type). *)
let rec parse_declarator st (base : Ast.type_expr) : string * Ast.type_expr =
  if cur st = Token.STAR then begin
    advance st;
    (* qualifiers after * are accepted and ignored *)
    while cur st = Token.KW_CONST || cur st = Token.KW_VOLATILE do advance st done;
    parse_declarator st (Ast.Tptr_te base)
  end
  else
    let name = expect_ident st in
    let ty = ref base in
    let sizes = ref [] in
    while cur st = Token.LBRACKET do
      advance st;
      let sz = if cur st = Token.RBRACKET then None else Some (parse_expr st) in
      expect st Token.RBRACKET;
      sizes := sz :: !sizes
    done;
    (* innermost size is the last suffix: build from inside out *)
    List.iter (fun sz -> ty := Ast.Tarray_te (!ty, sz)) !sizes;
    (name, !ty)

(* ------------------------------------------------------------------ *)
(* Initializers                                                        *)
(* ------------------------------------------------------------------ *)

let rec parse_init st : Ast.init =
  if cur st = Token.LBRACE then begin
    advance st;
    let items = ref [] in
    if cur st <> Token.RBRACE then begin
      items := [ parse_init st ];
      while cur st = Token.COMMA do
        advance st;
        if cur st <> Token.RBRACE then items := parse_init st :: !items
      done
    end;
    expect st Token.RBRACE;
    Ast.Init_list (List.rev !items)
  end
  else Ast.Init_expr (parse_assign st)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let mk_stmt sloc sdesc = { Ast.sdesc; sloc }

let rec parse_stmt st : Ast.stmt =
  let l = cur_loc st in
  match cur st with
  | Token.SEMI ->
      advance st;
      mk_stmt l Ast.Sskip
  | Token.LBRACE -> mk_stmt l (Ast.Sblock (parse_block st))
  | Token.KW_IF ->
      advance st;
      expect st Token.LPAREN;
      let c = parse_expr st in
      expect st Token.RPAREN;
      let then_ = parse_stmt st in
      let else_ =
        if cur st = Token.KW_ELSE then begin
          advance st;
          Some (parse_stmt st)
        end
        else None
      in
      mk_stmt l (Ast.Sif (c, then_, else_))
  | Token.KW_WHILE ->
      advance st;
      expect st Token.LPAREN;
      let c = parse_expr st in
      expect st Token.RPAREN;
      let body = parse_stmt st in
      mk_stmt l (Ast.Swhile (c, body))
  | Token.KW_DO ->
      advance st;
      let body = parse_stmt st in
      expect st Token.KW_WHILE;
      expect st Token.LPAREN;
      let c = parse_expr st in
      expect st Token.RPAREN;
      expect st Token.SEMI;
      mk_stmt l (Ast.Sdowhile (body, c))
  | Token.KW_FOR ->
      advance st;
      expect st Token.LPAREN;
      let init = if cur st = Token.SEMI then None else Some (parse_expr st) in
      expect st Token.SEMI;
      let cond = if cur st = Token.SEMI then None else Some (parse_expr st) in
      expect st Token.SEMI;
      let step = if cur st = Token.RPAREN then None else Some (parse_expr st) in
      expect st Token.RPAREN;
      let body = parse_stmt st in
      mk_stmt l (Ast.Sfor (init, cond, step, body))
  | Token.KW_RETURN ->
      advance st;
      let e = if cur st = Token.SEMI then None else Some (parse_expr st) in
      expect st Token.SEMI;
      mk_stmt l (Ast.Sreturn e)
  | Token.KW_BREAK ->
      advance st;
      expect st Token.SEMI;
      mk_stmt l Ast.Sbreak
  | Token.KW_CONTINUE ->
      advance st;
      expect st Token.SEMI;
      mk_stmt l Ast.Scontinue
  | Token.KW_SWITCH ->
      advance st;
      expect st Token.LPAREN;
      let e = parse_expr st in
      expect st Token.RPAREN;
      expect st Token.LBRACE;
      let cases = ref [] in
      while cur st <> Token.RBRACE do
        let cl = cur_loc st in
        let labels = ref [] in
        let more = ref true in
        while !more do
          match cur st with
          | Token.KW_CASE ->
              advance st;
              let e = parse_cond st in
              expect st Token.COLON;
              labels := Some e :: !labels
          | Token.KW_DEFAULT ->
              advance st;
              expect st Token.COLON;
              labels := None :: !labels
          | _ -> more := false
        done;
        if !labels = [] then error st "expected case or default label";
        let body = ref [] in
        let stop = ref false in
        while not !stop do
          match cur st with
          | Token.KW_CASE | Token.KW_DEFAULT | Token.RBRACE -> stop := true
          | Token.KW_BREAK ->
              advance st;
              expect st Token.SEMI;
              stop := true
          | _ -> body := parse_stmt st :: !body
        done;
        cases :=
          { Ast.case_labels = List.rev !labels;
            case_body = List.rev !body; case_loc = cl }
          :: !cases
      done;
      expect st Token.RBRACE;
      mk_stmt l (Ast.Sswitch (e, List.rev !cases))
  | _ when starts_type st ->
      let d = parse_local_decl st in
      mk_stmt l (Ast.Sdecl d)
  | _ ->
      let e = parse_expr st in
      expect st Token.SEMI;
      mk_stmt l (Ast.Sexpr e)

and parse_block st : Ast.block =
  expect st Token.LBRACE;
  let stmts = ref [] in
  while cur st <> Token.RBRACE do
    stmts := parse_stmt st :: !stmts
  done;
  expect st Token.RBRACE;
  List.rev !stmts

and parse_local_decl st : Ast.decl =
  let l = cur_loc st in
  let base, sp = parse_specs st in
  if sp.sp_typedef then error st "typedef not allowed inside functions";
  let name, ty = parse_declarator st base in
  let init =
    if cur st = Token.ASSIGN then begin
      advance st;
      Some (parse_init st)
    end
    else None
  in
  expect st Token.SEMI;
  {
    Ast.d_name = name; d_type = ty; d_storage = sp.sp_storage;
    d_volatile = sp.sp_volatile; d_const = sp.sp_const; d_init = init;
    d_loc = l;
  }

(* ------------------------------------------------------------------ *)
(* Globals                                                             *)
(* ------------------------------------------------------------------ *)

let parse_struct_def st l : Ast.global =
  (* at KW_STRUCT with '{' after tag *)
  advance st (* struct *);
  let tag = expect_ident st in
  expect st Token.LBRACE;
  let fields = ref [] in
  while cur st <> Token.RBRACE do
    let base, _sp = parse_specs st in
    let name, ty = parse_declarator st base in
    fields := (name, ty) :: !fields;
    while cur st = Token.COMMA do
      advance st;
      let name, ty = parse_declarator st base in
      fields := (name, ty) :: !fields
    done;
    expect st Token.SEMI
  done;
  expect st Token.RBRACE;
  expect st Token.SEMI;
  Ast.Gstruct (tag, List.rev !fields, l)

let parse_enum_def st l : Ast.global =
  advance st (* enum *);
  let tag = match cur st with
    | Token.IDENT s -> advance st; Some s
    | _ -> None
  in
  expect st Token.LBRACE;
  let items = ref [] in
  let stop = ref false in
  while not !stop do
    let name = expect_ident st in
    let v =
      if cur st = Token.ASSIGN then begin
        advance st;
        Some (parse_cond st)
      end
      else None
    in
    items := (name, v) :: !items;
    if cur st = Token.COMMA then begin
      advance st;
      if cur st = Token.RBRACE then stop := true
    end
    else stop := true
  done;
  expect st Token.RBRACE;
  expect st Token.SEMI;
  Ast.Genum (tag, List.rev !items, l)

let parse_global st : Ast.global =
  let l = cur_loc st in
  if cur st = Token.KW_STRUCT && lookahead st 2 = Token.LBRACE then
    parse_struct_def st l
  else if
    cur st = Token.KW_ENUM
    && (lookahead st 1 = Token.LBRACE || lookahead st 2 = Token.LBRACE)
  then parse_enum_def st l
  else begin
    let base, sp = parse_specs st in
    if sp.sp_typedef then begin
      let name, ty = parse_declarator st base in
      expect st Token.SEMI;
      Hashtbl.replace st.typedefs name ();
      Ast.Gtypedef (name, ty, l)
    end
    else if cur st = Token.SEMI then begin
      (* bare "struct s;" forward declaration: ignore *)
      advance st;
      Ast.Gtypedef ("<fwd>", base, l)
    end
    else
      let name, ty = parse_declarator st base in
      if cur st = Token.LPAREN then begin
        (* function definition or prototype *)
        advance st;
        let params = ref [] in
        if cur st = Token.KW_VOID && lookahead st 1 = Token.RPAREN then
          advance st
        else if cur st <> Token.RPAREN then begin
          let parse_param () =
            let pbase, _psp = parse_specs st in
            let pname, pty = parse_declarator st pbase in
            (pname, pty)
          in
          params := [ parse_param () ];
          while cur st = Token.COMMA do
            advance st;
            params := parse_param () :: !params
          done
        end;
        expect st Token.RPAREN;
        let params = List.rev !params in
        if cur st = Token.SEMI then begin
          advance st;
          Ast.Gfundecl (name, ty, params, l)
        end
        else
          let body = parse_block st in
          Ast.Gfun
            { Ast.f_name = name; f_ret = ty; f_params = params; f_body = body;
              f_loc = l }
      end
      else begin
        let init =
          if cur st = Token.ASSIGN then begin
            advance st;
            Some (parse_init st)
          end
          else None
        in
        expect st Token.SEMI;
        Ast.Gdecl
          {
            Ast.d_name = name; d_type = ty; d_storage = sp.sp_storage;
            d_volatile = sp.sp_volatile; d_const = sp.sp_const;
            d_init = init; d_loc = l;
          }
      end
  end

(** Parse a whole translation unit from tokens. *)
let parse_unit ~file (toks : Token.spanned list) : Ast.unit_ =
  let st = make toks in
  let globals = ref [] in
  while cur st <> Token.EOF do
    globals := parse_global st :: !globals
  done;
  { Ast.u_file = file; u_globals = List.rev !globals }

(** Convenience: preprocess, lex and parse a source string. *)
let parse_string ?env ~file src : Ast.unit_ =
  let pp = Preproc.run ?env ~file src in
  let toks = Lexer.tokenize ~file pp in
  parse_unit ~file toks

(** Parse a single expression (used by tests and the slicer CLI). *)
let parse_expr_string src : Ast.expr =
  let toks = Lexer.tokenize ~file:"<expr>" src in
  let st = make toks in
  let e = parse_expr st in
  if cur st <> Token.EOF then error st "trailing tokens after expression";
  e
