(** Hand-written lexer for the C subset.

    The lexer consumes a whole source string (normally the output of
    {!Preproc}) and produces a list of located tokens.  It understands
    [#line]-style markers emitted by the preprocessor so that locations
    refer to the original files. *)

exception Error of string * Loc.t

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
  mutable file : string;
}

let make_state ~file src = { src; pos = 0; line = 1; col = 1; file }

let loc st = Loc.make ~file:st.file ~line:st.line ~col:st.col

let error st msg = raise (Error (msg, loc st))

let at_end st = st.pos >= String.length st.src

let peek st = if at_end st then '\000' else st.src.[st.pos]

let peek2 st =
  if st.pos + 1 >= String.length st.src then '\000' else st.src.[st.pos + 1]

let advance st =
  if not (at_end st) then begin
    (if st.src.[st.pos] = '\n' then begin
       st.line <- st.line + 1;
       st.col <- 1
     end
     else st.col <- st.col + 1);
    st.pos <- st.pos + 1
  end

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

(* Skip whitespace and comments; handle line markers "# <n> \"file\"". *)
let rec skip_trivia st =
  match peek st with
  | ' ' | '\t' | '\r' | '\n' ->
      advance st;
      skip_trivia st
  | '/' when peek2 st = '/' ->
      while (not (at_end st)) && peek st <> '\n' do advance st done;
      skip_trivia st
  | '/' when peek2 st = '*' ->
      advance st; advance st;
      let rec loop () =
        if at_end st then error st "unterminated comment"
        else if peek st = '*' && peek2 st = '/' then begin advance st; advance st end
        else begin advance st; loop () end
      in
      loop ();
      skip_trivia st
  | '#' ->
      (* line marker: "# <num> "file"" or "#line <num> "file"" *)
      let buf = Buffer.create 32 in
      while (not (at_end st)) && peek st <> '\n' do
        Buffer.add_char buf (peek st);
        advance st
      done;
      let s = Buffer.contents buf in
      (* "# n \"file\"" means: the NEXT line is line n of file; the
         newline ending the marker line will bump the counter to n *)
      (try
         Scanf.sscanf s "#%_[ line] %d %S" (fun n f ->
             st.line <- n - 1;
             st.file <- f)
       with _ -> (
         try Scanf.sscanf s "# %d" (fun n -> st.line <- n - 1) with _ -> ()));
      skip_trivia st
  | _ -> ()

let lex_ident st =
  let start = st.pos in
  while is_alnum (peek st) do advance st done;
  String.sub st.src start (st.pos - start)

(* Lex an integer or float literal. *)
let lex_number st =
  let start = st.pos in
  let is_hexlit = peek st = '0' && (peek2 st = 'x' || peek2 st = 'X') in
  if is_hexlit then begin
    advance st; advance st;
    while is_hex (peek st) do advance st done
  end
  else begin
    while is_digit (peek st) do advance st done;
    if peek st = '.' then begin
      advance st;
      while is_digit (peek st) do advance st done
    end;
    if peek st = 'e' || peek st = 'E' then begin
      advance st;
      if peek st = '+' || peek st = '-' then advance st;
      while is_digit (peek st) do advance st done
    end
  end;
  let body = String.sub st.src start (st.pos - start) in
  (* suffixes *)
  let suffix_start = st.pos in
  while
    match peek st with
    | 'u' | 'U' | 'l' | 'L' | 'f' | 'F' -> true
    | _ -> false
  do advance st done;
  let suffix = String.lowercase_ascii
      (String.sub st.src suffix_start (st.pos - suffix_start))
  in
  let is_float_body =
    String.contains body '.'
    || ((not is_hexlit) && (String.contains body 'e' || String.contains body 'E'))
  in
  if is_float_body || suffix = "f" then
    let v =
      try float_of_string body
      with _ -> error st ("invalid floating-point literal " ^ body)
    in
    let kind = if String.contains suffix 'f' then Ctypes.Fsingle else Ctypes.Fdouble in
    (* single-precision literals are rounded to binary32 at lexing time,
       matching the compiler of the analyzed family *)
    let v =
      if kind = Ctypes.Fsingle then Int32.float_of_bits (Int32.bits_of_float v)
      else v
    in
    Token.FLOAT_LIT (v, kind)
  else
    let v =
      try int_of_string body
      with _ -> error st ("invalid integer literal " ^ body)
    in
    let unsigned = String.contains suffix 'u' in
    let long = String.contains suffix 'l' in
    let rank = if long then Ctypes.Long else Ctypes.Int in
    let sign = if unsigned then Ctypes.Unsigned else Ctypes.Signed in
    Token.INT_LIT (v, rank, sign)

let lex_char_lit st =
  advance st (* opening quote *);
  let c =
    match peek st with
    | '\\' ->
        advance st;
        let c =
          match peek st with
          | 'n' -> 10 | 't' -> 9 | 'r' -> 13 | '0' -> 0
          | '\\' -> 92 | '\'' -> 39 | '"' -> 34
          | c -> Char.code c
        in
        advance st;
        c
    | c ->
        advance st;
        Char.code c
  in
  if peek st <> '\'' then error st "unterminated character literal";
  advance st;
  Token.CHAR_LIT c

let lex_string_lit st =
  advance st;
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | '"' -> advance st
    | '\000' -> error st "unterminated string literal"
    | '\\' ->
        advance st;
        (match peek st with
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | c -> Buffer.add_char buf c);
        advance st;
        loop ()
    | c ->
        Buffer.add_char buf c;
        advance st;
        loop ()
  in
  loop ();
  Token.STRING_LIT (Buffer.contents buf)

let next_token st : Token.spanned =
  skip_trivia st;
  let tloc = loc st in
  let mk tok = { Token.tok; tloc } in
  let one tok = advance st; mk tok in
  let two tok = advance st; advance st; mk tok in
  let three tok = advance st; advance st; advance st; mk tok in
  match peek st with
  | '\000' -> mk Token.EOF
  | c when is_digit c -> mk (lex_number st)
  | '.' when is_digit (peek2 st) -> mk (lex_number st)
  | c when is_alpha c ->
      let id = lex_ident st in
      (match List.assoc_opt id Token.keyword_table with
      | Some kw -> mk kw
      | None -> mk (Token.IDENT id))
  | '\'' -> mk (lex_char_lit st)
  | '"' -> mk (lex_string_lit st)
  | '(' -> one Token.LPAREN
  | ')' -> one Token.RPAREN
  | '{' -> one Token.LBRACE
  | '}' -> one Token.RBRACE
  | '[' -> one Token.LBRACKET
  | ']' -> one Token.RBRACKET
  | ';' -> one Token.SEMI
  | ',' -> one Token.COMMA
  | ':' -> one Token.COLON
  | '?' -> one Token.QUESTION
  | '.' -> one Token.DOT
  | '~' -> one Token.TILDE
  | '+' -> (
      match peek2 st with
      | '+' -> two Token.PLUSPLUS
      | '=' -> two Token.PLUSEQ
      | _ -> one Token.PLUS)
  | '-' -> (
      match peek2 st with
      | '-' -> two Token.MINUSMINUS
      | '=' -> two Token.MINUSEQ
      | '>' -> two Token.ARROW
      | _ -> one Token.MINUS)
  | '*' -> if peek2 st = '=' then two Token.STAREQ else one Token.STAR
  | '/' -> if peek2 st = '=' then two Token.SLASHEQ else one Token.SLASH
  | '%' -> if peek2 st = '=' then two Token.PERCENTEQ else one Token.PERCENT
  | '^' -> if peek2 st = '=' then two Token.CARETEQ else one Token.CARET
  | '!' -> if peek2 st = '=' then two Token.NEQ else one Token.BANG
  | '=' -> if peek2 st = '=' then two Token.EQEQ else one Token.ASSIGN
  | '&' -> (
      match peek2 st with
      | '&' -> two Token.ANDAND
      | '=' -> two Token.AMPEQ
      | _ -> one Token.AMP)
  | '|' -> (
      match peek2 st with
      | '|' -> two Token.BARBAR
      | '=' -> two Token.BAREQ
      | _ -> one Token.BAR)
  | '<' -> (
      match peek2 st with
      | '=' -> two Token.LE
      | '<' ->
          if st.pos + 2 < String.length st.src && st.src.[st.pos + 2] = '='
          then three Token.LSHIFTEQ
          else two Token.LSHIFT
      | _ -> one Token.LT)
  | '>' -> (
      match peek2 st with
      | '=' -> two Token.GE
      | '>' ->
          if st.pos + 2 < String.length st.src && st.src.[st.pos + 2] = '='
          then three Token.RSHIFTEQ
          else two Token.RSHIFT
      | _ -> one Token.GT)
  | c -> error st (Fmt.str "unexpected character %C" c)

(** Tokenize a whole source string. *)
let tokenize ~file src : Token.spanned list =
  let st = make_state ~file src in
  let rec loop acc =
    let t = next_token st in
    if t.Token.tok = Token.EOF then List.rev (t :: acc) else loop (t :: acc)
  in
  loop []
