(** Hand-written lexer for the C subset (Sect. 5.1).  Consumes a whole
    source string (normally the output of {!Preproc}) and understands
    [#line]-style markers so locations refer to original files. *)

exception Error of string * Loc.t

(** Tokenize a whole source string; the result ends with [EOF]. *)
val tokenize : file:string -> string -> Token.spanned list
