(** A simple linker allowing programs consisting of several source files
    to be processed (Sect. 5.1).

    Linking happens at the parse-tree level: translation units are merged
    into one, with duplicate type definitions, prototypes and [extern]
    declarations coalesced.  Exactly one definition is kept per function
    and per initialized global. *)

exception Error of string

module SSet = Set.Make (String)

let decl_is_def (d : Ast.decl) = d.Ast.d_storage <> Ast.Sto_extern

(** Merge translation units. *)
let link (units : Ast.unit_ list) : Ast.unit_ =
  match units with
  | [] -> raise (Error "no translation units to link")
  | [ u ] -> u
  | first :: _ ->
      let seen_typedefs = ref SSet.empty in
      let seen_structs = ref SSet.empty in
      let seen_enums = ref SSet.empty in
      let seen_funs = ref SSet.empty in
      let seen_protos = ref SSet.empty in
      (* variable name -> has a definition been kept yet *)
      let var_defs = Hashtbl.create 64 in
      let globals = ref [] in
      let keep g = globals := g :: !globals in
      List.iter
        (fun (u : Ast.unit_) ->
          List.iter
            (fun (g : Ast.global) ->
              match g with
              | Ast.Gtypedef (name, _, _) ->
                  if name = "<fwd>" || not (SSet.mem name !seen_typedefs) then begin
                    seen_typedefs := SSet.add name !seen_typedefs;
                    keep g
                  end
              | Ast.Gstruct (tag, _, _) ->
                  (* duplicate struct definitions arise naturally from
                     header inclusion: keep the first occurrence *)
                  if not (SSet.mem tag !seen_structs) then begin
                    seen_structs := SSet.add tag !seen_structs;
                    keep g
                  end
              | Ast.Genum (tag, _, _) -> (
                  match tag with
                  | Some t when SSet.mem t !seen_enums -> ()
                  | _ ->
                      (match tag with
                      | Some t -> seen_enums := SSet.add t !seen_enums
                      | None -> ());
                      keep g)
              | Ast.Gfun f ->
                  if SSet.mem f.Ast.f_name !seen_funs then
                    raise (Error ("duplicate function definition: " ^ f.Ast.f_name))
                  else begin
                    seen_funs := SSet.add f.Ast.f_name !seen_funs;
                    keep g
                  end
              | Ast.Gfundecl (name, _, _, _) ->
                  if not (SSet.mem name !seen_protos) then begin
                    seen_protos := SSet.add name !seen_protos;
                    keep g
                  end
              | Ast.Gdecl d ->
                  let name = d.Ast.d_name in
                  let is_def = decl_is_def d in
                  (match Hashtbl.find_opt var_defs name with
                  | None ->
                      Hashtbl.replace var_defs name is_def;
                      keep g
                  | Some true when is_def && d.Ast.d_init <> None ->
                      raise (Error ("duplicate initialized global: " ^ name))
                  | Some false when is_def ->
                      (* replace the extern declaration by the definition;
                         simplest: keep both, the elaborator keeps the
                         first occurrence, so insert the definition and
                         drop the extern that was kept *)
                      globals :=
                        List.map
                          (fun g' ->
                            match g' with
                            | Ast.Gdecl d' when d'.Ast.d_name = name -> Ast.Gdecl d
                            | g' -> g')
                          !globals;
                      Hashtbl.replace var_defs name true
                  | Some _ -> ()))
            u.Ast.u_globals)
        units;
      { Ast.u_file = first.Ast.u_file; u_globals = List.rev !globals }

(** Preprocess, parse and link several named sources. *)
let parse_and_link ?env (sources : (string * string) list) : Ast.unit_ =
  let units =
    List.map (fun (file, src) -> Parser.parse_string ?env ~file src) sources
  in
  link units
