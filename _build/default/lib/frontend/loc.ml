(** Source locations for the C-subset frontend.

    Every token, AST node and alarm carries a location so that analyzer
    messages can point back into the analyzed source, as required for the
    alarm-inspection workflow of the paper (Sect. 3.3). *)

type t = {
  file : string;  (** source file name (after preprocessing, the original) *)
  line : int;     (** 1-based line number *)
  col : int;      (** 1-based column number *)
}

let make ~file ~line ~col = { file; line; col }

let dummy = { file = "<none>"; line = 0; col = 0 }

let is_dummy l = l.line = 0

let pp ppf l =
  if is_dummy l then Fmt.string ppf "<unknown>"
  else Fmt.pf ppf "%s:%d:%d" l.file l.line l.col

let to_string l = Fmt.str "%a" pp l

let compare (a : t) (b : t) =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c else Int.compare a.col b.col

let equal a b = compare a b = 0

(** A located value. *)
type 'a loc = { item : 'a; loc : t }

let with_loc loc item = { item; loc }
