(** Typed, normalized intermediate representation.

    This is the "simplified version of the abstract syntax tree with all
    types explicit and variables given unique identifiers" of Sect. 5.1.
    The elaboration performed by {!Typecheck} guarantees, in addition:

    - expressions are pure (assignments, increments and calls occurring in
      expression position have been hoisted into statements with fresh
      temporaries), so conditions "can be assumed to have no side effect
      and to contain no function call" (Sect. 5.4);
    - all implicit conversions are explicit [Ecast] nodes;
    - [for], [do]/[while] and [switch] have been desugared;
    - enumeration constants and [sizeof] have been replaced by integer
      literals. *)

(* ------------------------------------------------------------------ *)
(* Variables                                                           *)
(* ------------------------------------------------------------------ *)

type var_kind =
  | Kglobal
  | Kstatic of string  (** enclosing function; semantically a fresh global *)
  | Klocal of string   (** enclosing function *)
  | Kparam of string
  | Ktmp               (** elaboration-introduced temporary *)

type var = {
  v_id : int;          (** unique identifier *)
  v_name : string;     (** unique name (original, possibly suffixed) *)
  v_orig : string;     (** name as written in the source *)
  v_ty : Ctypes.t;
  v_kind : var_kind;
  v_volatile : bool;
  v_loc : Loc.t;
}

let var_is_global v =
  match v.v_kind with Kglobal | Kstatic _ -> true | _ -> false

let pp_var ppf v = Fmt.string ppf v.v_name

module Var = struct
  type t = var

  let compare a b = Int.compare a.v_id b.v_id
  let equal a b = a.v_id = b.v_id
  let hash a = a.v_id
end

module VarMap = Map.Make (Var)
module VarSet = Set.Make (Var)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

type unop =
  | Neg    (** arithmetic negation *)
  | Bnot   (** bitwise complement (integers) *)
  | Lnot   (** logical negation, yields 0/1 *)
  | Fabs   (** absolute value intrinsic *)
  | Sqrt   (** square-root intrinsic *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Shl | Shr
  | Band | Bor | Bxor
  | Land | Lor                      (** operands are pure; yields 0/1 *)
  | Lt | Gt | Le | Ge | Eq | Ne

type lval = { ldesc : ldesc; lty : Ctypes.t; lloc : Loc.t }

and ldesc =
  | Lvar of var
  | Lindex of lval * expr      (** array subscript; [lval] has array type *)
  | Lfield of lval * string    (** struct field access *)
  | Lderef of var              (** dereference of a pointer parameter *)

and expr = { edesc : edesc; ety : Ctypes.scalar; eloc : Loc.t }

and edesc =
  | Eint of int                (** integer constant of type [ety] *)
  | Efloat of float            (** float constant of type [ety] *)
  | Elval of lval
  | Eunop of unop * expr
  | Ebinop of binop * expr * expr
  | Ecast of Ctypes.scalar * expr

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

(** Call arguments: by value (pure expression) or by reference. *)
type arg = Aval of expr | Aref of lval

type stmt = { sdesc : sdesc; sloc : Loc.t }

and sdesc =
  | Sassign of lval * expr
  | Scall of var option * string * arg list
      (** optional destination temporary for the return value *)
  | Sif of expr * block * block
  | Swhile of loop_info * expr * block
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Swait                      (** [__astree_wait_for_clock()] *)
  | Sassert of expr            (** [__astree_assert(e)] — checked *)
  | Sassume of expr            (** [__astree_assume(e)] — trusted spec *)
  | Sskip
  | Slocal of var * expr option
      (** local-variable creation (stack cells are "created and destroyed
          on-the-fly", Sect. 5.2), with optional scalar initializer *)

and block = stmt list

(** Loop identity for per-loop iteration parameters (unrolling factors,
    widening bookkeeping). *)
and loop_info = { loop_id : int; loop_loc : Loc.t }

(* ------------------------------------------------------------------ *)
(* Programs                                                            *)
(* ------------------------------------------------------------------ *)

(** Static initializer values (after constant folding). *)
type init =
  | Iint of int
  | Ifloat of float
  | Iarray of init list
  | Istruct of (string * init) list
  | Izero  (** default zero-initialization *)

type param = Pval of var | Pref of var  (** [Pref v]: [v] has pointer type *)

type fundef = {
  fd_name : string;
  fd_ret : Ctypes.t;
  fd_params : param list;
  fd_body : block;
  fd_loc : Loc.t;
}

(** Range specification for a volatile input (Sect. 4: "ranges of values
    for a few hardware registers containing volatile input variables"). *)
type input_spec = { in_var : var; in_lo : float; in_hi : float }

type program = {
  p_file : string;
  p_globals : (var * init) list;
  p_structs : (string * Ctypes.struct_def) list;
  p_funs : (string * fundef) list;
  p_inputs : input_spec list;
  p_main : string;
  p_target : Ctypes.target;
}

let find_fun p name = List.assoc_opt name p.p_funs

let find_struct p name = List.assoc_opt name p.p_structs

(* ------------------------------------------------------------------ *)
(* Traversals                                                          *)
(* ------------------------------------------------------------------ *)

(** All variables syntactically read by an expression. *)
let rec expr_vars (e : expr) (acc : VarSet.t) : VarSet.t =
  match e.edesc with
  | Eint _ | Efloat _ -> acc
  | Elval lv -> lval_vars lv acc
  | Eunop (_, a) -> expr_vars a acc
  | Ebinop (_, a, b) -> expr_vars a (expr_vars b acc)
  | Ecast (_, a) -> expr_vars a acc

and lval_vars (lv : lval) (acc : VarSet.t) : VarSet.t =
  match lv.ldesc with
  | Lvar v -> VarSet.add v acc
  | Lindex (a, i) -> lval_vars a (expr_vars i acc)
  | Lfield (a, _) -> lval_vars a acc
  | Lderef v -> VarSet.add v acc

(** Root variable of an lvalue. *)
let rec lval_root (lv : lval) : var =
  match lv.ldesc with
  | Lvar v | Lderef v -> v
  | Lindex (a, _) | Lfield (a, _) -> lval_root a

(** Size in statements, used by benchmarks reporting kLOC-like figures. *)
let rec stmt_size (s : stmt) : int =
  match s.sdesc with
  | Sif (_, a, b) -> 1 + block_size a + block_size b
  | Swhile (_, _, b) -> 1 + block_size b
  | _ -> 1

and block_size (b : block) : int = List.fold_left (fun n s -> n + stmt_size s) 0 b

let program_size (p : program) : int =
  List.fold_left (fun n (_, fd) -> n + block_size fd.fd_body) 0 p.p_funs

(** Iterate over every statement of a block, recursively. *)
let rec iter_stmts (f : stmt -> unit) (b : block) : unit =
  List.iter
    (fun s ->
      f s;
      match s.sdesc with
      | Sif (_, a, b) ->
          iter_stmts f a;
          iter_stmts f b
      | Swhile (_, _, b) -> iter_stmts f b
      | _ -> ())
    b

(** Constant integer view of an expression, if syntactically constant. *)
let rec as_const_int (e : expr) : int option =
  match e.edesc with
  | Eint n -> Some n
  | Ecast (Ctypes.Tint _, a) -> as_const_int a
  | Eunop (Neg, a) -> Option.map (fun n -> -n) (as_const_int a)
  | _ -> None
