(** A simple linker allowing programs consisting of several source files
    to be processed (Sect. 5.1): translation units are merged with
    duplicate type definitions (as arise from header inclusion),
    prototypes and [extern] declarations coalesced; one definition is
    kept per function and initialized global. *)

exception Error of string

(** Merge translation units.
    @raise Error on duplicate definitions. *)
val link : Ast.unit_ list -> Ast.unit_

(** Preprocess, parse and link several (filename, contents) sources. *)
val parse_and_link : ?env:Preproc.env -> (string * string) list -> Ast.unit_
