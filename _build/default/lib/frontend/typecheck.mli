(** Type-checking and elaboration from {!Ast} to the normalized {!Tast}
    IR (Sect. 5.1): explicit types, unique variable identifiers, pure
    expressions (side effects and calls hoisted into statements), all
    sugar desugared, analyzer intrinsics recognized, syntactically
    constant expressions evaluated. *)

exception Error of string * Loc.t

(** Elaborate a parsed translation unit.  [main] is the user-supplied
    entry point (Sect. 5.3); [target] the machine description.
    @raise Error on subset violations or type errors. *)
val elab_program :
  ?target:Ctypes.target -> ?main:string -> Ast.unit_ -> Tast.program
