(** Post-elaboration simplifications (Sect. 5.1): alarm-preserving
    constant folding, replacement of constant-array reads at constant
    subscripts (hardware description tables are "optimized away"), and
    deletion of unused global variables. *)

type stats = { globals_before : int; globals_after : int }

val run : Tast.program -> Tast.program * stats
