(** Pretty-printing of the typed IR, used by tracing facilities
    (Sect. 5.3: "tracing facilities with various degrees of detail") and by
    the slicer output. *)

open Tast

let pp_unop ppf = function
  | Neg -> Fmt.string ppf "-"
  | Bnot -> Fmt.string ppf "~"
  | Lnot -> Fmt.string ppf "!"
  | Fabs -> Fmt.string ppf "fabs"
  | Sqrt -> Fmt.string ppf "sqrt"

let string_of_binop = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Shl -> "<<" | Shr -> ">>"
  | Band -> "&" | Bor -> "|" | Bxor -> "^"
  | Land -> "&&" | Lor -> "||"
  | Lt -> "<" | Gt -> ">" | Le -> "<=" | Ge -> ">=" | Eq -> "==" | Ne -> "!="

let pp_binop ppf op = Fmt.string ppf (string_of_binop op)

let rec pp_lval ppf (lv : lval) =
  match lv.ldesc with
  | Lvar v -> Fmt.string ppf v.v_name
  | Lindex (a, i) -> Fmt.pf ppf "%a[%a]" pp_lval a pp_expr i
  | Lfield (a, f) -> Fmt.pf ppf "%a.%s" pp_lval a f
  | Lderef v -> Fmt.pf ppf "*%s" v.v_name

and pp_expr ppf (e : expr) =
  match e.edesc with
  | Eint n -> Fmt.int ppf n
  | Efloat f -> Fmt.pf ppf "%h" f
  | Elval lv -> pp_lval ppf lv
  | Eunop ((Fabs | Sqrt) as op, a) -> Fmt.pf ppf "%a(%a)" pp_unop op pp_expr a
  | Eunop (op, a) -> Fmt.pf ppf "%a(%a)" pp_unop op pp_expr a
  | Ebinop (op, a, b) -> Fmt.pf ppf "(%a %a %a)" pp_expr a pp_binop op pp_expr b
  | Ecast (s, a) -> Fmt.pf ppf "(%a)(%a)" Ctypes.pp_scalar s pp_expr a

let pp_arg ppf = function
  | Aval e -> pp_expr ppf e
  | Aref lv -> Fmt.pf ppf "&%a" pp_lval lv

let rec pp_stmt ?(indent = 0) ppf (s : stmt) =
  let pad = String.make indent ' ' in
  match s.sdesc with
  | Sassign (lv, e) -> Fmt.pf ppf "%s%a = %a;" pad pp_lval lv pp_expr e
  | Scall (None, f, args) ->
      Fmt.pf ppf "%s%s(%a);" pad f Fmt.(list ~sep:comma pp_arg) args
  | Scall (Some v, f, args) ->
      Fmt.pf ppf "%s%s = %s(%a);" pad v.v_name f
        Fmt.(list ~sep:comma pp_arg) args
  | Sif (c, a, []) ->
      Fmt.pf ppf "%sif (%a) {@\n%a@\n%s}" pad pp_expr c
        (pp_block ~indent:(indent + 2)) a pad
  | Sif (c, a, b) ->
      Fmt.pf ppf "%sif (%a) {@\n%a@\n%s} else {@\n%a@\n%s}" pad pp_expr c
        (pp_block ~indent:(indent + 2)) a pad
        (pp_block ~indent:(indent + 2)) b pad
  | Swhile (li, c, b) ->
      Fmt.pf ppf "%swhile /*#%d*/ (%a) {@\n%a@\n%s}" pad li.loop_id pp_expr c
        (pp_block ~indent:(indent + 2)) b pad
  | Sreturn None -> Fmt.pf ppf "%sreturn;" pad
  | Sreturn (Some e) -> Fmt.pf ppf "%sreturn %a;" pad pp_expr e
  | Sbreak -> Fmt.pf ppf "%sbreak;" pad
  | Scontinue -> Fmt.pf ppf "%scontinue;" pad
  | Swait -> Fmt.pf ppf "%s__astree_wait_for_clock();" pad
  | Sassert e -> Fmt.pf ppf "%s__astree_assert(%a);" pad pp_expr e
  | Sassume e -> Fmt.pf ppf "%s__astree_assume(%a);" pad pp_expr e
  | Sskip -> Fmt.pf ppf "%s;" pad
  | Slocal (v, None) ->
      Fmt.pf ppf "%s%a %s;" pad Ctypes.pp v.v_ty v.v_name
  | Slocal (v, Some e) ->
      Fmt.pf ppf "%s%a %s = %a;" pad Ctypes.pp v.v_ty v.v_name pp_expr e

and pp_block ?(indent = 0) ppf (b : block) =
  Fmt.(list ~sep:(any "@\n") (pp_stmt ~indent)) ppf b

let pp_fundef ppf (fd : fundef) =
  let pp_param ppf = function
    | Pval v -> Fmt.pf ppf "%a %s" Ctypes.pp v.v_ty v.v_name
    | Pref v -> Fmt.pf ppf "%a %s" Ctypes.pp v.v_ty v.v_name
  in
  Fmt.pf ppf "%a %s(%a) {@\n%a@\n}" Ctypes.pp fd.fd_ret fd.fd_name
    Fmt.(list ~sep:comma pp_param) fd.fd_params
    (pp_block ~indent:2) fd.fd_body

let rec pp_init ppf = function
  | Iint n -> Fmt.int ppf n
  | Ifloat f -> Fmt.pf ppf "%h" f
  | Iarray l -> Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma pp_init) l
  | Istruct l ->
      Fmt.pf ppf "{%a}"
        Fmt.(list ~sep:comma (pair ~sep:(any "=") string pp_init)) l
  | Izero -> Fmt.string ppf "0"

let pp_program ppf (p : program) =
  List.iter
    (fun (v, init) ->
      Fmt.pf ppf "%a %s = %a;@\n" Ctypes.pp v.v_ty v.v_name pp_init init)
    p.p_globals;
  List.iter (fun (_, fd) -> Fmt.pf ppf "%a@\n@\n" pp_fundef fd) p.p_funs

let program_to_string p = Fmt.str "%a" pp_program p
