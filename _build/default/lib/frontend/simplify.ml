(** Post-elaboration simplifications (Sect. 5.1):

    - evaluation of syntactically constant sub-expressions, when the
      evaluation provably incurs no run-time error (so that alarms are
      preserved);
    - replacement of reads of constant arrays at constant subscripts by
      their value ("the analyzed programs use large arrays representing
      hardware features with constant subscripts; those arrays are thus
      optimized away");
    - deletion of unused global variables. *)

open Tast

(* ------------------------------------------------------------------ *)
(* Constant folding                                                    *)
(* ------------------------------------------------------------------ *)

(* Fold only when the result is exactly representable in the expression's
   type and no alarm could be raised; otherwise keep the node so the
   analysis reports the alarm. *)

let in_int_range tgt s n =
  match s with
  | Ctypes.Tint (r, sg) ->
      let lo, hi = Ctypes.range_of_int_type tgt r sg in
      n >= lo && n <= hi
  | _ -> false

let rec fold_expr tgt (e : expr) : expr =
  match e.edesc with
  | Eint _ | Efloat _ -> e
  | Elval lv -> { e with edesc = Elval (fold_lval tgt lv) }
  | Ecast (s, a) -> (
      let a = fold_expr tgt a in
      match (a.edesc, s) with
      | Eint n, Ctypes.Tint _ when in_int_range tgt s n -> { e with edesc = Eint n }
      | Eint n, Ctypes.Tfloat Ctypes.Fdouble when abs n < 1 lsl 52 ->
          { e with edesc = Efloat (float_of_int n) }
      | Eint n, Ctypes.Tfloat Ctypes.Fsingle when abs n < 1 lsl 23 ->
          { e with edesc = Efloat (float_of_int n) }
      | Efloat f, Ctypes.Tfloat Ctypes.Fdouble -> { e with edesc = Efloat f }
      | Efloat f, Ctypes.Tfloat Ctypes.Fsingle ->
          let f32 = Int32.float_of_bits (Int32.bits_of_float f) in
          if Float.is_nan f32 || Float.is_integer (f32 -. f32) (* finite *)
          then { e with edesc = Efloat f32 }
          else { e with edesc = Ecast (s, a) }
      | _ -> { e with edesc = Ecast (s, a) })
  | Eunop (op, a) -> (
      let a = fold_expr tgt a in
      match (op, a.edesc) with
      | Neg, Eint n when in_int_range tgt e.ety (-n) -> { e with edesc = Eint (-n) }
      | Neg, Efloat f -> { e with edesc = Efloat (-.f) }
      | Lnot, Eint n -> { e with edesc = Eint (if n = 0 then 1 else 0) }
      | Bnot, Eint n when in_int_range tgt e.ety (lnot n) ->
          { e with edesc = Eint (lnot n) }
      | Fabs, Efloat f -> { e with edesc = Efloat (Float.abs f) }
      | _ -> { e with edesc = Eunop (op, a) })
  | Ebinop (op, a, b) -> (
      let a = fold_expr tgt a in
      let b = fold_expr tgt b in
      let keep () = { e with edesc = Ebinop (op, a, b) } in
      match (a.edesc, b.edesc) with
      | Eint x, Eint y -> (
          let fold_int n = if in_int_range tgt e.ety n then { e with edesc = Eint n } else keep () in
          match op with
          | Add -> fold_int (x + y)
          | Sub -> fold_int (x - y)
          | Mul -> fold_int (x * y)
          | Div -> if y = 0 then keep () else fold_int (x / y)
          | Mod -> if y = 0 then keep () else fold_int (x mod y)
          | Shl -> if y < 0 || y > 31 then keep () else fold_int (x lsl y)
          | Shr -> if y < 0 || y > 31 then keep () else fold_int (x asr y)
          | Band -> fold_int (x land y)
          | Bor -> fold_int (x lor y)
          | Bxor -> fold_int (x lxor y)
          | Land -> { e with edesc = Eint (if x <> 0 && y <> 0 then 1 else 0) }
          | Lor -> { e with edesc = Eint (if x <> 0 || y <> 0 then 1 else 0) }
          | Lt -> { e with edesc = Eint (if x < y then 1 else 0) }
          | Gt -> { e with edesc = Eint (if x > y then 1 else 0) }
          | Le -> { e with edesc = Eint (if x <= y then 1 else 0) }
          | Ge -> { e with edesc = Eint (if x >= y then 1 else 0) }
          | Eq -> { e with edesc = Eint (if x = y then 1 else 0) }
          | Ne -> { e with edesc = Eint (if x <> y then 1 else 0) })
      | Efloat _, Efloat _ ->
          (* floating-point constant folding is NOT performed: the abstract
             evaluation handles rounding soundly and folding here would
             have to duplicate that logic *)
          keep ()
      | _ -> keep ())

and fold_lval tgt (lv : lval) : lval =
  match lv.ldesc with
  | Lvar _ | Lderef _ -> lv
  | Lindex (a, i) -> { lv with ldesc = Lindex (fold_lval tgt a, fold_expr tgt i) }
  | Lfield (a, f) -> { lv with ldesc = Lfield (fold_lval tgt a, f) }

let rec fold_stmt tgt (s : stmt) : stmt =
  match s.sdesc with
  | Sassign (lv, e) -> { s with sdesc = Sassign (fold_lval tgt lv, fold_expr tgt e) }
  | Scall (r, f, args) ->
      let args =
        List.map
          (function
            | Aval e -> Aval (fold_expr tgt e)
            | Aref lv -> Aref (fold_lval tgt lv))
          args
      in
      { s with sdesc = Scall (r, f, args) }
  | Sif (c, a, b) -> (
      let c = fold_expr tgt c in
      let a = List.map (fold_stmt tgt) a in
      let b = List.map (fold_stmt tgt) b in
      match c.edesc with
      | Eint 0 -> { s with sdesc = Sif (c, [], b) }
      | Eint _ -> { s with sdesc = Sif (c, a, []) }
      | _ -> { s with sdesc = Sif (c, a, b) })
  | Swhile (li, c, b) ->
      { s with sdesc = Swhile (li, fold_expr tgt c, List.map (fold_stmt tgt) b) }
  | Sreturn (Some e) -> { s with sdesc = Sreturn (Some (fold_expr tgt e)) }
  | Sassert e -> { s with sdesc = Sassert (fold_expr tgt e) }
  | Sassume e -> { s with sdesc = Sassume (fold_expr tgt e) }
  | Slocal (v, Some e) -> { s with sdesc = Slocal (v, Some (fold_expr tgt e)) }
  | _ -> s

(* ------------------------------------------------------------------ *)
(* Constant-array read replacement                                     *)
(* ------------------------------------------------------------------ *)

(* Roots assigned (directly or by reference) anywhere in the program. *)
let assigned_roots (p : program) : VarSet.t =
  let acc = ref VarSet.empty in
  let add lv = acc := VarSet.add (lval_root lv) !acc in
  List.iter
    (fun (_, fd) ->
      iter_stmts
        (fun s ->
          match s.sdesc with
          | Sassign (lv, _) -> add lv
          | Scall (_, _, args) ->
              List.iter (function Aref lv -> add lv | Aval _ -> ()) args
          | _ -> ())
        fd.fd_body)
    p.p_funs;
  !acc

let init_const_at (init : init) (path : int list) : edesc option =
  let rec go init path =
    match (init, path) with
    | Iint n, [] -> Some (Eint n)
    | Ifloat f, [] -> Some (Efloat f)
    | Izero, [] -> Some (Eint 0)
    | Iarray items, i :: rest -> (
        match List.nth_opt items i with
        | Some it -> go it rest
        | None -> None)
    | Izero, _ :: _ -> Some (Eint 0)
    | _ -> None
  in
  go init path

(* Replace reads tab[c1][c2]... of constant arrays by their value. *)
let replace_const_reads (p : program) : program =
  let assigned = assigned_roots p in
  let const_globals =
    List.filter_map
      (fun (v, init) ->
        match v.v_ty with
        | Ctypes.Tarray _
          when (not (VarSet.mem v assigned)) && not v.v_volatile ->
            Some (v.v_id, init)
        | _ -> None)
      p.p_globals
    |> List.to_seq |> Hashtbl.of_seq
  in
  let rec try_path (lv : lval) : (int * int list) option =
    (* returns (root id, reversed constant index path) *)
    match lv.ldesc with
    | Lvar v -> Some (v.v_id, [])
    | Lindex (a, i) -> (
        match (try_path a, as_const_int i) with
        | Some (root, path), Some n -> Some (root, n :: path)
        | _ -> None)
    | _ -> None
  in
  let rec tr_expr (e : expr) : expr =
    match e.edesc with
    | Elval lv -> (
        match try_path lv with
        | Some (root, rev_path) when Hashtbl.mem const_globals root -> (
            let init = Hashtbl.find const_globals root in
            match init_const_at init (List.rev rev_path) with
            | Some d -> { e with edesc = d }
            | None -> { e with edesc = Elval (tr_lval lv) })
        | _ -> { e with edesc = Elval (tr_lval lv) })
    | Eunop (op, a) -> { e with edesc = Eunop (op, tr_expr a) }
    | Ebinop (op, a, b) -> { e with edesc = Ebinop (op, tr_expr a, tr_expr b) }
    | Ecast (s, a) -> { e with edesc = Ecast (s, tr_expr a) }
    | _ -> e
  and tr_lval (lv : lval) : lval =
    match lv.ldesc with
    | Lindex (a, i) -> { lv with ldesc = Lindex (tr_lval a, tr_expr i) }
    | Lfield (a, f) -> { lv with ldesc = Lfield (tr_lval a, f) }
    | _ -> lv
  in
  let rec tr_stmt (s : stmt) : stmt =
    match s.sdesc with
    | Sassign (lv, e) -> { s with sdesc = Sassign (tr_lval lv, tr_expr e) }
    | Scall (r, f, args) ->
        let args =
          List.map
            (function Aval e -> Aval (tr_expr e) | Aref lv -> Aref (tr_lval lv))
            args
        in
        { s with sdesc = Scall (r, f, args) }
    | Sif (c, a, b) ->
        { s with sdesc = Sif (tr_expr c, List.map tr_stmt a, List.map tr_stmt b) }
    | Swhile (li, c, b) ->
        { s with sdesc = Swhile (li, tr_expr c, List.map tr_stmt b) }
    | Sreturn (Some e) -> { s with sdesc = Sreturn (Some (tr_expr e)) }
    | Sassert e -> { s with sdesc = Sassert (tr_expr e) }
    | Sassume e -> { s with sdesc = Sassume (tr_expr e) }
    | Slocal (v, Some e) -> { s with sdesc = Slocal (v, Some (tr_expr e)) }
    | _ -> s
  in
  {
    p with
    p_funs =
      List.map
        (fun (n, fd) -> (n, { fd with fd_body = List.map tr_stmt fd.fd_body }))
        p.p_funs;
  }

(* ------------------------------------------------------------------ *)
(* Unused-global deletion                                              *)
(* ------------------------------------------------------------------ *)

let used_globals (p : program) : VarSet.t =
  let acc = ref VarSet.empty in
  let add_expr e = acc := expr_vars e !acc in
  let add_lval lv = acc := lval_vars lv !acc in
  List.iter
    (fun (_, fd) ->
      iter_stmts
        (fun s ->
          match s.sdesc with
          | Sassign (lv, e) -> add_lval lv; add_expr e
          | Scall (_, _, args) ->
              List.iter
                (function Aval e -> add_expr e | Aref lv -> add_lval lv)
                args
          | Sif (c, _, _) | Swhile (_, c, _) -> add_expr c
          | Sreturn (Some e) | Sassert e | Sassume e -> add_expr e
          | Slocal (_, Some e) -> add_expr e
          | _ -> ())
        fd.fd_body)
    p.p_funs;
  List.iter (fun spec -> acc := VarSet.add spec.in_var !acc) p.p_inputs;
  !acc

let remove_unused_globals (p : program) : program =
  let used = used_globals p in
  {
    p with
    p_globals =
      List.filter
        (fun (v, _) -> VarSet.mem v used || v.v_volatile)
        p.p_globals;
  }

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(** Run all simplifications.  Statistics about removed globals are
    reported through the returned record. *)
type stats = { globals_before : int; globals_after : int }

let run (p : program) : program * stats =
  let globals_before = List.length p.p_globals in
  let p =
    {
      p with
      p_funs =
        List.map
          (fun (n, fd) ->
            (n, { fd with fd_body = List.map (fold_stmt p.p_target) fd.fd_body }))
          p.p_funs;
    }
  in
  let p = replace_const_reads p in
  (* fold again: constant reads may enable more folding *)
  let p =
    {
      p with
      p_funs =
        List.map
          (fun (n, fd) ->
            (n, { fd with fd_body = List.map (fold_stmt p.p_target) fd.fd_body }))
          p.p_funs;
    }
  in
  let p = remove_unused_globals p in
  (p, { globals_before; globals_after = List.length p.p_globals })
