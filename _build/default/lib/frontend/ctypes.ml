(** C scalar and aggregate types, and the machine target description.

    The paper (Sect. 5.3) notes that the iterator interprets C "as well as
    some information about the target environment (some orders of evaluation
    left unspecified by the C norm, the sizes of the arithmetic types,
    etc.)".  This module centralizes that target information.  The default
    target mirrors the 32-bit avionics machine of the paper. *)

(* ------------------------------------------------------------------ *)
(* Integer kinds                                                       *)
(* ------------------------------------------------------------------ *)

(** Signedness of an integer type. *)
type signedness = Signed | Unsigned

(** Integer rank.  [Bool] models both [_Bool] and the enumerated booleans
    of the program family (the paper treats enumerations, including
    booleans, as integers, Sect. 6.1.1). *)
type irank = Bool | Char | Short | Int | Long

(** Floating-point kinds (IEEE-754 binary32 and binary64). *)
type fkind = Fsingle | Fdouble

(** Scalar types. *)
type scalar = Tint of irank * signedness | Tfloat of fkind

(** Full C-subset types.  Pointers appear only as function parameters
    (call-by-reference, Sect. 4); this is enforced by the type-checker. *)
type t =
  | Tvoid
  | Tscalar of scalar
  | Tarray of t * int             (** element type, statically known size *)
  | Tstruct of string             (** named struct; fields in environment *)
  | Tptr of t                     (** restricted to parameter positions *)

(** A struct layout: ordered list of field names and types. *)
type struct_def = { sname : string; fields : (string * t) list }

(* ------------------------------------------------------------------ *)
(* Target machine                                                      *)
(* ------------------------------------------------------------------ *)

(** Machine target parameters: byte sizes of integer ranks and the
    evaluation order of function-call arguments (left unspecified by the C
    norm; the analyzed compiler fixed it). *)
type target = {
  size_char : int;
  size_short : int;
  size_int : int;
  size_long : int;
  args_left_to_right : bool;
      (** evaluation order for call arguments; the family's compiler
          evaluates left-to-right *)
  char_signed : bool;  (** whether plain [char] is signed on this target *)
}

(** The paper's target: 32-bit machine, 32-bit [int] and [long]. *)
let default_target =
  {
    size_char = 1;
    size_short = 2;
    size_int = 4;
    size_long = 4;
    args_left_to_right = true;
    char_signed = true;
  }

let size_of_irank tgt = function
  | Bool -> 1
  | Char -> tgt.size_char
  | Short -> tgt.size_short
  | Int -> tgt.size_int
  | Long -> tgt.size_long

(** Inclusive range of representable values of an integer type, as native
    OCaml integers.  All target types are at most 32 bits wide so native
    63-bit ints represent every bound exactly. *)
let range_of_int_type tgt rank sign =
  match (rank, sign) with
  | Bool, _ -> (0, 1)
  | _ ->
      let bits = 8 * size_of_irank tgt rank in
      (match sign with
      | Signed -> (-(1 lsl (bits - 1)), (1 lsl (bits - 1)) - 1)
      | Unsigned -> (0, (1 lsl bits) - 1))

(** Largest finite value of a floating-point kind. *)
let fmax = function
  | Fsingle -> 3.40282346638528859812e38 (* max finite binary32 *)
  | Fdouble -> max_float

(** Smallest positive normal value. *)
let fmin_normal = function
  | Fsingle -> 1.17549435082228750797e-38
  | Fdouble -> 2.2250738585072014e-308

(** Relative rounding error bound (half-ulp of 1.0): 2^-24 resp. 2^-53.
    This is the constant [f] of the ellipsoid domain (Sect. 6.2.3) and of
    the linearization error terms (Sect. 6.3). *)
let frel_err = function
  | Fsingle -> ldexp 1.0 (-24)
  | Fdouble -> ldexp 1.0 (-53)

(** Smallest positive denormal, the absolute error floor of a rounding. *)
let fabs_err = function
  | Fsingle -> ldexp 1.0 (-149)
  | Fdouble -> ldexp 1.0 (-1074)

(* ------------------------------------------------------------------ *)
(* Type predicates and conversions                                     *)
(* ------------------------------------------------------------------ *)

let is_integer = function Tscalar (Tint _) -> true | _ -> false
let is_float = function Tscalar (Tfloat _) -> true | _ -> false
let is_scalar = function Tscalar _ -> true | _ -> false
let is_arith = is_scalar

let is_bool = function Tscalar (Tint (Bool, _)) -> true | _ -> false

(** Integer rank ordering used for the usual arithmetic conversions. *)
let irank_order = function Bool -> 0 | Char -> 1 | Short -> 2 | Int -> 3 | Long -> 4

(** Integer promotion: everything below [int] promotes to [int] (all
    sub-int types fit in the target's signed int). *)
let promote tgt s =
  match s with
  | Tint (r, _) when irank_order r < irank_order Int ->
      ignore tgt;
      Tint (Int, Signed)
  | s -> s

(** Usual arithmetic conversions on two promoted scalar types. *)
let usual_arith tgt a b =
  let a = promote tgt a and b = promote tgt b in
  match (a, b) with
  | Tfloat Fdouble, _ | _, Tfloat Fdouble -> Tfloat Fdouble
  | Tfloat Fsingle, _ | _, Tfloat Fsingle -> Tfloat Fsingle
  | Tint (ra, sa), Tint (rb, sb) ->
      if irank_order ra = irank_order rb then
        Tint (ra, if sa = Unsigned || sb = Unsigned then Unsigned else Signed)
      else if irank_order ra > irank_order rb then Tint (ra, sa)
      else Tint (rb, sb)

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                     *)
(* ------------------------------------------------------------------ *)

let pp_scalar ppf = function
  | Tint (Bool, _) -> Fmt.string ppf "_Bool"
  | Tint (r, s) ->
      let rs = match r with
        | Bool -> "_Bool" | Char -> "char" | Short -> "short"
        | Int -> "int" | Long -> "long"
      in
      if s = Unsigned then Fmt.pf ppf "unsigned %s" rs else Fmt.string ppf rs
  | Tfloat Fsingle -> Fmt.string ppf "float"
  | Tfloat Fdouble -> Fmt.string ppf "double"

let rec pp ppf = function
  | Tvoid -> Fmt.string ppf "void"
  | Tscalar s -> pp_scalar ppf s
  | Tarray (t, n) -> Fmt.pf ppf "%a[%d]" pp t n
  | Tstruct s -> Fmt.pf ppf "struct %s" s
  | Tptr t -> Fmt.pf ppf "%a*" pp t

let to_string t = Fmt.str "%a" pp t

let equal_scalar (a : scalar) (b : scalar) = a = b

let rec equal a b =
  match (a, b) with
  | Tvoid, Tvoid -> true
  | Tscalar x, Tscalar y -> equal_scalar x y
  | Tarray (x, n), Tarray (y, m) -> n = m && equal x y
  | Tstruct x, Tstruct y -> String.equal x y
  | Tptr x, Tptr y -> equal x y
  | _ -> false

(** Convenient abbreviations. *)
let t_bool = Tscalar (Tint (Bool, Unsigned))
let t_int = Tscalar (Tint (Int, Signed))
let t_uint = Tscalar (Tint (Int, Unsigned))
let t_long = Tscalar (Tint (Long, Signed))
let t_float = Tscalar (Tfloat Fsingle)
let t_double = Tscalar (Tfloat Fdouble)
