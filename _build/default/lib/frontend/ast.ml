(** Untyped parse tree of the C subset, as produced by {!Parser}.

    The subset matches Sect. 4 of the paper: no dynamic allocation, no
    recursion, pointers restricted to call-by-reference parameters, plus the
    periodic-synchronous intrinsic [__astree_wait_for_clock()] and the
    environment-specification intrinsics. *)

type unop =
  | Neg           (** arithmetic negation [-e] *)
  | Lnot          (** logical not [!e] *)
  | Bnot          (** bitwise not [~e] *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Shl | Shr
  | Band | Bor | Bxor
  | Land | Lor
  | Lt | Gt | Le | Ge | Eq | Ne

type expr = { edesc : edesc; eloc : Loc.t }

and edesc =
  | Eint of int * Ctypes.irank * Ctypes.signedness
  | Efloat of float * Ctypes.fkind
  | Evar of string
  | Eunop of unop * expr
  | Ebinop of binop * expr * expr
  | Eassign of expr * expr               (** lvalue = expr *)
  | Eassign_op of binop * expr * expr    (** lvalue op= expr *)
  | Epreincr of bool * expr              (** true = increment *)
  | Epostincr of bool * expr
  | Ecall of string * expr list
  | Eindex of expr * expr                (** a[i] *)
  | Efield of expr * string              (** s.f *)
  | Earrow of expr * string              (** p->f, pointer parameters only *)
  | Ederef of expr                       (** *p, pointer parameters only *)
  | Eaddr of expr                        (** &lvalue, argument position only *)
  | Ecast of type_expr * expr
  | Econd of expr * expr * expr          (** c ? a : b *)
  | Ecomma of expr * expr
  | Esizeof of type_expr

(** Syntactic types, resolved to {!Ctypes.t} by the type-checker. *)
and type_expr =
  | Tname of string                          (** typedef name *)
  | Tbase of Ctypes.scalar
  | Tvoid_te
  | Tstruct_te of string
  | Tarray_te of type_expr * expr option     (** size must be constant *)
  | Tptr_te of type_expr

type stmt = { sdesc : sdesc; sloc : Loc.t }

and sdesc =
  | Sexpr of expr
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sdowhile of stmt * expr
  | Sfor of expr option * expr option * expr option * stmt
  | Sblock of block
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sswitch of expr * (case list)
  | Sskip
  | Sdecl of decl  (** local declaration inside a block *)

and case = {
  case_labels : expr option list;
      (** [None] is the [default:] label; several labels may share a body *)
  case_body : stmt list;
  case_loc : Loc.t;
}

and block = stmt list

(** Variable and function declarations. *)
and decl = {
  d_name : string;
  d_type : type_expr;
  d_storage : storage;
  d_volatile : bool;
  d_const : bool;
  d_init : init option;
  d_loc : Loc.t;
}

and storage = Sto_none | Sto_static | Sto_extern

and init = Init_expr of expr | Init_list of init list

type fundef = {
  f_name : string;
  f_ret : type_expr;
  f_params : (string * type_expr) list;
  f_body : block;
  f_loc : Loc.t;
}

type global =
  | Gdecl of decl
  | Gfun of fundef
  | Gtypedef of string * type_expr * Loc.t
  | Gstruct of string * (string * type_expr) list * Loc.t
  | Genum of string option * (string * expr option) list * Loc.t
  | Gfundecl of string * type_expr * (string * type_expr) list * Loc.t
      (** function prototype *)

(** A parsed translation unit. *)
type unit_ = { u_file : string; u_globals : global list }

let pp_unop ppf = function
  | Neg -> Fmt.string ppf "-"
  | Lnot -> Fmt.string ppf "!"
  | Bnot -> Fmt.string ppf "~"

let pp_binop ppf op =
  Fmt.string ppf
    (match op with
    | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
    | Shl -> "<<" | Shr -> ">>"
    | Band -> "&" | Bor -> "|" | Bxor -> "^"
    | Land -> "&&" | Lor -> "||"
    | Lt -> "<" | Gt -> ">" | Le -> "<=" | Ge -> ">=" | Eq -> "==" | Ne -> "!=")
