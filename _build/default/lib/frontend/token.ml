(** Lexical tokens of the C subset (Sect. 5.1). *)

type t =
  (* literals *)
  | INT_LIT of int * Ctypes.irank * Ctypes.signedness
      (** integer literal with the type deduced from its suffix/value *)
  | FLOAT_LIT of float * Ctypes.fkind
  | CHAR_LIT of int
  | STRING_LIT of string  (** accepted only in directive positions *)
  | IDENT of string
  (* keywords *)
  | KW_VOID | KW_CHAR | KW_SHORT | KW_INT | KW_LONG | KW_FLOAT | KW_DOUBLE
  | KW_SIGNED | KW_UNSIGNED | KW_BOOL
  | KW_STRUCT | KW_ENUM | KW_TYPEDEF
  | KW_IF | KW_ELSE | KW_WHILE | KW_DO | KW_FOR | KW_RETURN | KW_BREAK
  | KW_CONTINUE | KW_SWITCH | KW_CASE | KW_DEFAULT
  | KW_STATIC | KW_EXTERN | KW_CONST | KW_VOLATILE | KW_SIZEOF
  (* punctuation *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | COLON | QUESTION | DOT | ARROW
  (* operators *)
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | BAR | CARET | TILDE | BANG
  | LSHIFT | RSHIFT
  | LT | GT | LE | GE | EQEQ | NEQ
  | ANDAND | BARBAR
  | ASSIGN
  | PLUSEQ | MINUSEQ | STAREQ | SLASHEQ | PERCENTEQ
  | AMPEQ | BAREQ | CARETEQ | LSHIFTEQ | RSHIFTEQ
  | PLUSPLUS | MINUSMINUS
  | EOF

let keyword_table : (string * t) list =
  [
    ("void", KW_VOID); ("char", KW_CHAR); ("short", KW_SHORT);
    ("int", KW_INT); ("long", KW_LONG); ("float", KW_FLOAT);
    ("double", KW_DOUBLE); ("signed", KW_SIGNED); ("unsigned", KW_UNSIGNED);
    ("_Bool", KW_BOOL); ("struct", KW_STRUCT); ("enum", KW_ENUM);
    ("typedef", KW_TYPEDEF); ("if", KW_IF); ("else", KW_ELSE);
    ("while", KW_WHILE); ("do", KW_DO); ("for", KW_FOR);
    ("return", KW_RETURN); ("break", KW_BREAK); ("continue", KW_CONTINUE);
    ("switch", KW_SWITCH); ("case", KW_CASE); ("default", KW_DEFAULT);
    ("static", KW_STATIC); ("extern", KW_EXTERN); ("const", KW_CONST);
    ("volatile", KW_VOLATILE); ("sizeof", KW_SIZEOF);
  ]

let pp ppf = function
  | INT_LIT (n, _, _) -> Fmt.pf ppf "%d" n
  | FLOAT_LIT (f, _) -> Fmt.pf ppf "%g" f
  | CHAR_LIT c -> Fmt.pf ppf "'\\x%02x'" c
  | STRING_LIT s -> Fmt.pf ppf "%S" s
  | IDENT s -> Fmt.string ppf s
  | KW_VOID -> Fmt.string ppf "void"
  | KW_CHAR -> Fmt.string ppf "char"
  | KW_SHORT -> Fmt.string ppf "short"
  | KW_INT -> Fmt.string ppf "int"
  | KW_LONG -> Fmt.string ppf "long"
  | KW_FLOAT -> Fmt.string ppf "float"
  | KW_DOUBLE -> Fmt.string ppf "double"
  | KW_SIGNED -> Fmt.string ppf "signed"
  | KW_UNSIGNED -> Fmt.string ppf "unsigned"
  | KW_BOOL -> Fmt.string ppf "_Bool"
  | KW_STRUCT -> Fmt.string ppf "struct"
  | KW_ENUM -> Fmt.string ppf "enum"
  | KW_TYPEDEF -> Fmt.string ppf "typedef"
  | KW_IF -> Fmt.string ppf "if"
  | KW_ELSE -> Fmt.string ppf "else"
  | KW_WHILE -> Fmt.string ppf "while"
  | KW_DO -> Fmt.string ppf "do"
  | KW_FOR -> Fmt.string ppf "for"
  | KW_RETURN -> Fmt.string ppf "return"
  | KW_BREAK -> Fmt.string ppf "break"
  | KW_CONTINUE -> Fmt.string ppf "continue"
  | KW_SWITCH -> Fmt.string ppf "switch"
  | KW_CASE -> Fmt.string ppf "case"
  | KW_DEFAULT -> Fmt.string ppf "default"
  | KW_STATIC -> Fmt.string ppf "static"
  | KW_EXTERN -> Fmt.string ppf "extern"
  | KW_CONST -> Fmt.string ppf "const"
  | KW_VOLATILE -> Fmt.string ppf "volatile"
  | KW_SIZEOF -> Fmt.string ppf "sizeof"
  | LPAREN -> Fmt.string ppf "(" | RPAREN -> Fmt.string ppf ")"
  | LBRACE -> Fmt.string ppf "{" | RBRACE -> Fmt.string ppf "}"
  | LBRACKET -> Fmt.string ppf "[" | RBRACKET -> Fmt.string ppf "]"
  | SEMI -> Fmt.string ppf ";" | COMMA -> Fmt.string ppf ","
  | COLON -> Fmt.string ppf ":" | QUESTION -> Fmt.string ppf "?"
  | DOT -> Fmt.string ppf "." | ARROW -> Fmt.string ppf "->"
  | PLUS -> Fmt.string ppf "+" | MINUS -> Fmt.string ppf "-"
  | STAR -> Fmt.string ppf "*" | SLASH -> Fmt.string ppf "/"
  | PERCENT -> Fmt.string ppf "%"
  | AMP -> Fmt.string ppf "&" | BAR -> Fmt.string ppf "|"
  | CARET -> Fmt.string ppf "^" | TILDE -> Fmt.string ppf "~"
  | BANG -> Fmt.string ppf "!"
  | LSHIFT -> Fmt.string ppf "<<" | RSHIFT -> Fmt.string ppf ">>"
  | LT -> Fmt.string ppf "<" | GT -> Fmt.string ppf ">"
  | LE -> Fmt.string ppf "<=" | GE -> Fmt.string ppf ">="
  | EQEQ -> Fmt.string ppf "==" | NEQ -> Fmt.string ppf "!="
  | ANDAND -> Fmt.string ppf "&&" | BARBAR -> Fmt.string ppf "||"
  | ASSIGN -> Fmt.string ppf "="
  | PLUSEQ -> Fmt.string ppf "+=" | MINUSEQ -> Fmt.string ppf "-="
  | STAREQ -> Fmt.string ppf "*=" | SLASHEQ -> Fmt.string ppf "/="
  | PERCENTEQ -> Fmt.string ppf "%%="
  | AMPEQ -> Fmt.string ppf "&=" | BAREQ -> Fmt.string ppf "|="
  | CARETEQ -> Fmt.string ppf "^="
  | LSHIFTEQ -> Fmt.string ppf "<<=" | RSHIFTEQ -> Fmt.string ppf ">>="
  | PLUSPLUS -> Fmt.string ppf "++" | MINUSMINUS -> Fmt.string ppf "--"
  | EOF -> Fmt.string ppf "<eof>"

let to_string t = Fmt.str "%a" pp t

(** A token paired with its source location. *)
type spanned = { tok : t; tloc : Loc.t }
