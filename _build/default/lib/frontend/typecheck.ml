(** Type-checking and elaboration from {!Ast} to the normalized {!Tast} IR.

    Implements the "type-checked and compiled to an intermediate
    representation" step of Sect. 5.1, including:
    - explicit types on every node and unique variable identifiers;
    - purification of expressions (side effects and calls are hoisted into
      statements with fresh temporaries, so that the iterator can assume
      pure conditions, Sect. 5.4);
    - desugaring of [for], [do]/[while], [switch], [?:], compound
      assignments and increments;
    - recognition of the analyzer intrinsics ([__astree_wait_for_clock],
      [__astree_assert], [__astree_assume], [__astree_input_range]);
    - evaluation of syntactically constant expressions (Sect. 5.1). *)

exception Error of string * Loc.t

let err loc fmt = Fmt.kstr (fun m -> raise (Error (m, loc))) fmt

(* ------------------------------------------------------------------ *)
(* Elaboration environment                                             *)
(* ------------------------------------------------------------------ *)

type fun_sig = { fs_ret : Ctypes.t; fs_params : (string * Ctypes.t) list }

type env = {
  target : Ctypes.target;
  typedefs : (string, Ctypes.t) Hashtbl.t;
  structs : (string, Ctypes.struct_def) Hashtbl.t;
  enums : (string, int) Hashtbl.t;          (* enumeration constants *)
  globals : (string, Tast.var) Hashtbl.t;
  fun_sigs : (string, fun_sig) Hashtbl.t;
  mutable global_inits : (Tast.var * Tast.init) list;  (* reversed *)
  mutable inputs : Tast.input_spec list;
  mutable scopes : (string, Tast.var) Hashtbl.t list;  (* innermost first *)
  mutable next_id : int;
  mutable next_tmp : int;
  mutable next_loop : int;
  mutable cur_fun : string;
  mutable cur_ret : Ctypes.t;
  mutable hoisted_statics : (Tast.var * Tast.init) list;
}

let make_env target =
  {
    target;
    typedefs = Hashtbl.create 16;
    structs = Hashtbl.create 16;
    enums = Hashtbl.create 16;
    globals = Hashtbl.create 64;
    fun_sigs = Hashtbl.create 16;
    global_inits = [];
    inputs = [];
    scopes = [];
    next_id = 0;
    next_tmp = 0;
    next_loop = 0;
    cur_fun = "";
    cur_ret = Ctypes.Tvoid;
    hoisted_statics = [];
  }

let fresh_id env =
  let id = env.next_id in
  env.next_id <- id + 1;
  id

let fresh_var env ~name ~orig ~ty ~kind ~volatile ~loc : Tast.var =
  {
    Tast.v_id = fresh_id env;
    v_name = name;
    v_orig = orig;
    v_ty = ty;
    v_kind = kind;
    v_volatile = volatile;
    v_loc = loc;
  }

let fresh_tmp env ~ty ~loc : Tast.var =
  let n = env.next_tmp in
  env.next_tmp <- n + 1;
  fresh_var env
    ~name:(Fmt.str "__tmp%d" n)
    ~orig:"<tmp>" ~ty ~kind:Tast.Ktmp ~volatile:false ~loc

let fresh_loop env loc : Tast.loop_info =
  let id = env.next_loop in
  env.next_loop <- id + 1;
  { Tast.loop_id = id; loop_loc = loc }

let push_scope env = env.scopes <- Hashtbl.create 8 :: env.scopes
let pop_scope env =
  match env.scopes with [] -> () | _ :: rest -> env.scopes <- rest

let bind_local env name var =
  match env.scopes with
  | [] -> invalid_arg "bind_local: no scope"
  | s :: _ -> Hashtbl.replace s name var

let lookup_var env name : Tast.var option =
  let rec in_scopes = function
    | [] -> Hashtbl.find_opt env.globals name
    | s :: rest -> (
        match Hashtbl.find_opt s name with
        | Some v -> Some v
        | None -> in_scopes rest)
  in
  in_scopes env.scopes

(* ------------------------------------------------------------------ *)
(* Type resolution                                                     *)
(* ------------------------------------------------------------------ *)

let rec resolve_type env loc (te : Ast.type_expr) : Ctypes.t =
  match te with
  | Ast.Tvoid_te -> Ctypes.Tvoid
  | Ast.Tbase s -> Ctypes.Tscalar s
  | Ast.Tname n -> (
      match Hashtbl.find_opt env.typedefs n with
      | Some t -> t
      | None -> err loc "unknown type name %s" n)
  | Ast.Tstruct_te tag ->
      if not (Hashtbl.mem env.structs tag) then
        err loc "unknown struct %s" tag;
      Ctypes.Tstruct tag
  | Ast.Tarray_te (elt, sz) ->
      let eltt = resolve_type env loc elt in
      let n =
        match sz with
        | None -> err loc "array size required"
        | Some e -> (
            match const_int_expr env e with
            | Some n when n > 0 -> n
            | Some n -> err loc "invalid array size %d" n
            | None -> err loc "array size is not a constant expression")
      in
      Ctypes.Tarray (eltt, n)
  | Ast.Tptr_te t -> Ctypes.Tptr (resolve_type env loc t)

(* Syntactic constant evaluation over the untyped AST (used for array
   sizes, enum values and static initializers). *)
and const_int_expr env (e : Ast.expr) : int option =
  match e.Ast.edesc with
  | Ast.Eint (n, _, _) -> Some n
  | Ast.Evar x -> Hashtbl.find_opt env.enums x
  | Ast.Eunop (Ast.Neg, a) -> Option.map Int.neg (const_int_expr env a)
  | Ast.Eunop (Ast.Bnot, a) -> Option.map lnot (const_int_expr env a)
  | Ast.Eunop (Ast.Lnot, a) ->
      Option.map (fun n -> if n = 0 then 1 else 0) (const_int_expr env a)
  | Ast.Ebinop (op, a, b) -> (
      match (const_int_expr env a, const_int_expr env b) with
      | Some x, Some y -> (
          match op with
          | Ast.Add -> Some (x + y)
          | Ast.Sub -> Some (x - y)
          | Ast.Mul -> Some (x * y)
          | Ast.Div -> if y = 0 then None else Some (x / y)
          | Ast.Mod -> if y = 0 then None else Some (x mod y)
          | Ast.Shl -> Some (x lsl y)
          | Ast.Shr -> Some (x asr y)
          | Ast.Band -> Some (x land y)
          | Ast.Bor -> Some (x lor y)
          | Ast.Bxor -> Some (x lxor y)
          | Ast.Lt -> Some (if x < y then 1 else 0)
          | Ast.Gt -> Some (if x > y then 1 else 0)
          | Ast.Le -> Some (if x <= y then 1 else 0)
          | Ast.Ge -> Some (if x >= y then 1 else 0)
          | Ast.Eq -> Some (if x = y then 1 else 0)
          | Ast.Ne -> Some (if x <> y then 1 else 0)
          | Ast.Land -> Some (if x <> 0 && y <> 0 then 1 else 0)
          | Ast.Lor -> Some (if x <> 0 || y <> 0 then 1 else 0))
      | _ -> None)
  | Ast.Ecast (_, a) -> const_int_expr env a
  | Ast.Econd (c, a, b) -> (
      match const_int_expr env c with
      | Some 0 -> const_int_expr env b
      | Some _ -> const_int_expr env a
      | None -> None)
  | Ast.Esizeof te -> (
      match resolve_type env e.Ast.eloc te with
      | t -> Some (sizeof env t)
      | exception _ -> None)
  | _ -> None

and const_float_expr env (e : Ast.expr) : float option =
  match e.Ast.edesc with
  | Ast.Efloat (f, _) -> Some f
  | Ast.Eunop (Ast.Neg, a) -> Option.map Float.neg (const_float_expr env a)
  | Ast.Ecast (_, a) -> const_float_expr env a
  | Ast.Ebinop (op, a, b) -> (
      match (const_float_expr env a, const_float_expr env b) with
      | Some x, Some y -> (
          match op with
          | Ast.Add -> Some (x +. y)
          | Ast.Sub -> Some (x -. y)
          | Ast.Mul -> Some (x *. y)
          | Ast.Div -> Some (x /. y)
          | _ -> None)
      | _ -> (
          match (const_int_expr env a, const_float_expr env b) with
          | Some x, Some y -> (
              match op with
              | Ast.Add -> Some (float_of_int x +. y)
              | Ast.Sub -> Some (float_of_int x -. y)
              | Ast.Mul -> Some (float_of_int x *. y)
              | Ast.Div -> Some (float_of_int x /. y)
              | _ -> None)
          | _ -> (
              match (const_float_expr env a, const_int_expr env b) with
              | Some x, Some y -> (
                  match op with
                  | Ast.Add -> Some (x +. float_of_int y)
                  | Ast.Sub -> Some (x -. float_of_int y)
                  | Ast.Mul -> Some (x *. float_of_int y)
                  | Ast.Div -> Some (x /. float_of_int y)
                  | _ -> None)
              | _ -> None)))
  | _ -> (
      match const_int_expr env e with
      | Some n -> Some (float_of_int n)
      | None -> None)

and sizeof env : Ctypes.t -> int = function
  | Ctypes.Tvoid -> 1
  | Ctypes.Tscalar (Ctypes.Tint (r, _)) -> Ctypes.size_of_irank env.target r
  | Ctypes.Tscalar (Ctypes.Tfloat Ctypes.Fsingle) -> 4
  | Ctypes.Tscalar (Ctypes.Tfloat Ctypes.Fdouble) -> 8
  | Ctypes.Tarray (t, n) -> n * sizeof env t
  | Ctypes.Tstruct tag -> (
      match Hashtbl.find_opt env.structs tag with
      | Some sd ->
          List.fold_left (fun acc (_, t) -> acc + sizeof env t) 0 sd.Ctypes.fields
      | None -> 0)
  | Ctypes.Tptr _ -> 4

(* ------------------------------------------------------------------ *)
(* Conversions                                                         *)
(* ------------------------------------------------------------------ *)

let scalar_of _env loc (t : Ctypes.t) : Ctypes.scalar =
  match t with
  | Ctypes.Tscalar s -> s
  | t -> err loc "expected a scalar type, got %a" Ctypes.pp t

(* Insert an explicit conversion when types differ. *)
let cast_to (s : Ctypes.scalar) (e : Tast.expr) : Tast.expr =
  if Ctypes.equal_scalar e.Tast.ety s then e
  else { Tast.edesc = Tast.Ecast (s, e); ety = s; eloc = e.Tast.eloc }

let bool_of_expr (e : Tast.expr) : Tast.expr =
  (* normalize a scalar used as a truth value into e != 0 *)
  match e.Tast.edesc with
  | Tast.Ebinop ((Lt | Gt | Le | Ge | Eq | Ne | Land | Lor), _, _)
  | Tast.Eunop (Tast.Lnot, _) ->
      e
  | _ ->
      let zero =
        if Ctypes.is_float (Ctypes.Tscalar e.Tast.ety) then
          { Tast.edesc = Tast.Efloat 0.0; ety = e.Tast.ety; eloc = e.Tast.eloc }
        else { Tast.edesc = Tast.Eint 0; ety = e.Tast.ety; eloc = e.Tast.eloc }
      in
      {
        Tast.edesc = Tast.Ebinop (Tast.Ne, e, zero);
        ety = Ctypes.Tint (Ctypes.Int, Ctypes.Signed);
        eloc = e.Tast.eloc;
      }

let tr_binop : Ast.binop -> Tast.binop = function
  | Ast.Add -> Tast.Add | Ast.Sub -> Tast.Sub | Ast.Mul -> Tast.Mul
  | Ast.Div -> Tast.Div | Ast.Mod -> Tast.Mod
  | Ast.Shl -> Tast.Shl | Ast.Shr -> Tast.Shr
  | Ast.Band -> Tast.Band | Ast.Bor -> Tast.Bor | Ast.Bxor -> Tast.Bxor
  | Ast.Land -> Tast.Land | Ast.Lor -> Tast.Lor
  | Ast.Lt -> Tast.Lt | Ast.Gt -> Tast.Gt | Ast.Le -> Tast.Le
  | Ast.Ge -> Tast.Ge | Ast.Eq -> Tast.Eq | Ast.Ne -> Tast.Ne

(* ------------------------------------------------------------------ *)
(* Expression elaboration                                              *)
(* ------------------------------------------------------------------ *)

(* Elaboration returns a list of prefix statements (reversed) plus a pure
   expression.  [emit] appends to the prefix. *)

type ctx = { env : env; mutable prefix : Tast.stmt list (* reversed *) }

let emit ctx s = ctx.prefix <- s :: ctx.prefix

let mk_stmt loc sdesc = { Tast.sdesc; sloc = loc }
let mk_expr loc ety edesc = { Tast.edesc; ety; eloc = loc }
let mk_lval loc lty ldesc = { Tast.ldesc; lty; lloc = loc }

let int_ty = Ctypes.Tint (Ctypes.Int, Ctypes.Signed)

(* Declare a fresh temporary holding [e]'s value; returns the lval. *)
let save_in_tmp ctx (e : Tast.expr) : Tast.expr =
  let v = fresh_tmp ctx.env ~ty:(Ctypes.Tscalar e.Tast.ety) ~loc:e.Tast.eloc in
  emit ctx (mk_stmt e.Tast.eloc (Tast.Slocal (v, Some e)));
  mk_expr e.Tast.eloc e.Tast.ety
    (Tast.Elval (mk_lval e.Tast.eloc (Ctypes.Tscalar e.Tast.ety) (Tast.Lvar v)))

let rec elab_expr ctx (e : Ast.expr) : Tast.expr =
  let env = ctx.env in
  let loc = e.Ast.eloc in
  match e.Ast.edesc with
  | Ast.Eint (n, r, s) -> mk_expr loc (Ctypes.Tint (r, s)) (Tast.Eint n)
  | Ast.Efloat (f, k) -> mk_expr loc (Ctypes.Tfloat k) (Tast.Efloat f)
  | Ast.Evar x -> (
      match Hashtbl.find_opt env.enums x with
      | Some n -> mk_expr loc int_ty (Tast.Eint n)
      | None -> (
          match lookup_var env x with
          | Some v -> (
              match v.Tast.v_ty with
              | Ctypes.Tscalar s ->
                  mk_expr loc s
                    (Tast.Elval (mk_lval loc v.Tast.v_ty (Tast.Lvar v)))
              | _ -> err loc "variable %s used as a scalar value" x)
          | None -> err loc "unbound variable %s" x))
  | Ast.Eunop (op, a) -> (
      let a' = elab_expr ctx a in
      match op with
      | Ast.Neg ->
          let s = Ctypes.promote env.target a'.Tast.ety in
          let a' = cast_to s a' in
          mk_expr loc s (Tast.Eunop (Tast.Neg, a'))
      | Ast.Bnot ->
          if not (Ctypes.is_integer (Ctypes.Tscalar a'.Tast.ety)) then
            err loc "~ applied to a non-integer";
          let s = Ctypes.promote env.target a'.Tast.ety in
          let a' = cast_to s a' in
          mk_expr loc s (Tast.Eunop (Tast.Bnot, a'))
      | Ast.Lnot -> mk_expr loc int_ty (Tast.Eunop (Tast.Lnot, bool_of_expr a')))
  | Ast.Ebinop ((Ast.Land | Ast.Lor) as op, a, b) ->
      (* elaborate rhs into a sub-context to detect side effects *)
      let a' = bool_of_expr (elab_expr ctx a) in
      let sub = { env; prefix = [] } in
      let b' = bool_of_expr (elab_expr sub b) in
      if sub.prefix = [] then
        mk_expr loc int_ty (Tast.Ebinop (tr_binop op, a', b'))
      else begin
        (* short-circuit with effects: desugar via a temporary and a test *)
        let v = fresh_tmp env ~ty:(Ctypes.Tscalar int_ty) ~loc in
        let vlv = mk_lval loc (Ctypes.Tscalar int_ty) (Tast.Lvar v) in
        let default_ = if op = Ast.Land then 0 else 1 in
        emit ctx
          (mk_stmt loc
             (Tast.Slocal (v, Some (mk_expr loc int_ty (Tast.Eint default_)))));
        let then_body =
          List.rev
            (mk_stmt loc (Tast.Sassign (vlv, b')) :: sub.prefix)
        in
        let cond = if op = Ast.Land then a'
          else mk_expr loc int_ty (Tast.Eunop (Tast.Lnot, a')) in
        emit ctx (mk_stmt loc (Tast.Sif (cond, then_body, [])));
        mk_expr loc int_ty (Tast.Elval vlv)
      end
  | Ast.Ebinop (op, a, b) -> (
      let a' = elab_expr ctx a in
      let b' = elab_expr ctx b in
      match op with
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div ->
          let s = Ctypes.usual_arith env.target a'.Tast.ety b'.Tast.ety in
          mk_expr loc s (Tast.Ebinop (tr_binop op, cast_to s a', cast_to s b'))
      | Ast.Mod | Ast.Band | Ast.Bor | Ast.Bxor ->
          if
            not
              (Ctypes.is_integer (Ctypes.Tscalar a'.Tast.ety)
              && Ctypes.is_integer (Ctypes.Tscalar b'.Tast.ety))
          then err loc "integer operator applied to non-integers";
          let s = Ctypes.usual_arith env.target a'.Tast.ety b'.Tast.ety in
          mk_expr loc s (Tast.Ebinop (tr_binop op, cast_to s a', cast_to s b'))
      | Ast.Shl | Ast.Shr ->
          if
            not
              (Ctypes.is_integer (Ctypes.Tscalar a'.Tast.ety)
              && Ctypes.is_integer (Ctypes.Tscalar b'.Tast.ety))
          then err loc "shift applied to non-integers";
          let s = Ctypes.promote env.target a'.Tast.ety in
          mk_expr loc s
            (Tast.Ebinop
               (tr_binop op, cast_to s a',
                cast_to (Ctypes.promote env.target b'.Tast.ety) b'))
      | Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge | Ast.Eq | Ast.Ne ->
          let s = Ctypes.usual_arith env.target a'.Tast.ety b'.Tast.ety in
          mk_expr loc int_ty
            (Tast.Ebinop (tr_binop op, cast_to s a', cast_to s b'))
      | Ast.Land | Ast.Lor -> assert false)
  | Ast.Eassign (lhs, rhs) ->
      let lv = elab_lval ctx lhs in
      let rhs' = elab_expr ctx rhs in
      let s = scalar_of env loc lv.Tast.lty in
      let rhs' = cast_to s rhs' in
      emit ctx (mk_stmt loc (Tast.Sassign (lv, rhs')));
      mk_expr loc s (Tast.Elval lv)
  | Ast.Eassign_op (op, lhs, rhs) ->
      let lv = elab_lval ctx lhs in
      let s = scalar_of env loc lv.Tast.lty in
      let cur = mk_expr loc s (Tast.Elval lv) in
      let rhs' = elab_expr ctx rhs in
      let sop = Ctypes.usual_arith env.target s rhs'.Tast.ety in
      let res =
        mk_expr loc sop (Tast.Ebinop (tr_binop op, cast_to sop cur, cast_to sop rhs'))
      in
      emit ctx (mk_stmt loc (Tast.Sassign (lv, cast_to s res)));
      mk_expr loc s (Tast.Elval lv)
  | Ast.Epreincr (up, lhs) ->
      let lv = elab_lval ctx lhs in
      let s = scalar_of env loc lv.Tast.lty in
      let one = mk_expr loc int_ty (Tast.Eint 1) in
      let sop = Ctypes.usual_arith env.target s int_ty in
      let cur = mk_expr loc s (Tast.Elval lv) in
      let res =
        mk_expr loc sop
          (Tast.Ebinop ((if up then Tast.Add else Tast.Sub),
                        cast_to sop cur, cast_to sop one))
      in
      emit ctx (mk_stmt loc (Tast.Sassign (lv, cast_to s res)));
      mk_expr loc s (Tast.Elval lv)
  | Ast.Epostincr (up, lhs) ->
      let lv = elab_lval ctx lhs in
      let s = scalar_of env loc lv.Tast.lty in
      let old = save_in_tmp ctx (mk_expr loc s (Tast.Elval lv)) in
      let one = mk_expr loc int_ty (Tast.Eint 1) in
      let sop = Ctypes.usual_arith env.target s int_ty in
      let cur = mk_expr loc s (Tast.Elval lv) in
      let res =
        mk_expr loc sop
          (Tast.Ebinop ((if up then Tast.Add else Tast.Sub),
                        cast_to sop cur, cast_to sop one))
      in
      emit ctx (mk_stmt loc (Tast.Sassign (lv, cast_to s res)));
      old
  | Ast.Ecall (name, args) -> elab_call ctx loc name args
  | Ast.Eindex _ | Ast.Efield _ | Ast.Earrow _ | Ast.Ederef _ ->
      let lv = elab_lval ctx e in
      let s = scalar_of env loc lv.Tast.lty in
      mk_expr loc s (Tast.Elval lv)
  | Ast.Eaddr _ -> err loc "& allowed only in call-argument position"
  | Ast.Ecast (te, a) -> (
      let t = resolve_type env loc te in
      let a' = elab_expr ctx a in
      match t with
      | Ctypes.Tscalar s -> cast_to s a'
      | _ -> err loc "unsupported cast to %a" Ctypes.pp t)
  | Ast.Econd (c, a, b) ->
      (* desugared into a temporary and a test *)
      let c' = bool_of_expr (elab_expr ctx c) in
      let suba = { env; prefix = [] } in
      let a' = elab_expr suba a in
      let subb = { env; prefix = [] } in
      let b' = elab_expr subb b in
      let s = Ctypes.usual_arith env.target a'.Tast.ety b'.Tast.ety in
      let v = fresh_tmp env ~ty:(Ctypes.Tscalar s) ~loc in
      let vlv = mk_lval loc (Ctypes.Tscalar s) (Tast.Lvar v) in
      emit ctx (mk_stmt loc (Tast.Slocal (v, None)));
      let then_b =
        List.rev (mk_stmt loc (Tast.Sassign (vlv, cast_to s a')) :: suba.prefix)
      in
      let else_b =
        List.rev (mk_stmt loc (Tast.Sassign (vlv, cast_to s b')) :: subb.prefix)
      in
      emit ctx (mk_stmt loc (Tast.Sif (c', then_b, else_b)));
      mk_expr loc s (Tast.Elval vlv)
  | Ast.Ecomma (a, b) ->
      ignore (elab_expr ctx a);
      elab_expr ctx b
  | Ast.Esizeof te ->
      let t = resolve_type env loc te in
      mk_expr loc (Ctypes.Tint (Ctypes.Int, Ctypes.Unsigned))
        (Tast.Eint (sizeof env t))

and elab_lval ctx (e : Ast.expr) : Tast.lval =
  let env = ctx.env in
  let loc = e.Ast.eloc in
  match e.Ast.edesc with
  | Ast.Evar x -> (
      match lookup_var env x with
      | Some v -> (
          match v.Tast.v_ty with
          | Ctypes.Tptr t ->
              (* a pointer parameter used as a value denotes its target
                 only under * or ->; bare use is an error except in
                 argument position (handled in elab_call) *)
              ignore t;
              mk_lval loc v.Tast.v_ty (Tast.Lvar v)
          | _ -> mk_lval loc v.Tast.v_ty (Tast.Lvar v))
      | None -> err loc "unbound variable %s" x)
  | Ast.Eindex (a, i) -> (
      let base = elab_lval ctx a in
      let i' = elab_expr ctx i in
      if not (Ctypes.is_integer (Ctypes.Tscalar i'.Tast.ety)) then
        err loc "array subscript is not an integer";
      match base.Tast.lty with
      | Ctypes.Tarray (t, _) -> mk_lval loc t (Tast.Lindex (base, i'))
      | Ctypes.Tptr (Ctypes.Tarray (t, _) as at) ->
          (* p[i] where p : pointer to array parameter *)
          let root = Tast.lval_root base in
          mk_lval loc t (Tast.Lindex (mk_lval loc at (Tast.Lderef root), i'))
      | t -> err loc "subscript of non-array type %a" Ctypes.pp t)
  | Ast.Efield (a, f) -> (
      let base = elab_lval ctx a in
      match base.Tast.lty with
      | Ctypes.Tstruct tag -> (
          match Hashtbl.find_opt env.structs tag with
          | Some sd -> (
              match List.assoc_opt f sd.Ctypes.fields with
              | Some ft -> mk_lval loc ft (Tast.Lfield (base, f))
              | None -> err loc "struct %s has no field %s" tag f)
          | None -> err loc "unknown struct %s" tag)
      | t -> err loc "field access on non-struct type %a" Ctypes.pp t)
  | Ast.Earrow (a, f) -> (
      (* p->f where p is a pointer parameter *)
      match a.Ast.edesc with
      | Ast.Evar x -> (
          match lookup_var env x with
          | Some v -> (
              match v.Tast.v_ty with
              | Ctypes.Tptr (Ctypes.Tstruct tag as st) -> (
                  match Hashtbl.find_opt env.structs tag with
                  | Some sd -> (
                      match List.assoc_opt f sd.Ctypes.fields with
                      | Some ft ->
                          mk_lval loc ft
                            (Tast.Lfield (mk_lval loc st (Tast.Lderef v), f))
                      | None -> err loc "struct %s has no field %s" tag f)
                  | None -> err loc "unknown struct %s" tag)
              | t -> err loc "-> applied to non-pointer-to-struct %a" Ctypes.pp t)
          | None -> err loc "unbound variable %s" x)
      | _ -> err loc "-> base must be a parameter")
  | Ast.Ederef a -> (
      match a.Ast.edesc with
      | Ast.Evar x -> (
          match lookup_var env x with
          | Some v -> (
              match v.Tast.v_ty with
              | Ctypes.Tptr t -> mk_lval loc t (Tast.Lderef v)
              | t -> err loc "* applied to non-pointer %a" Ctypes.pp t)
          | None -> err loc "unbound variable %s" x)
      | _ -> err loc "* base must be a parameter (call-by-reference only)")
  | _ -> err loc "expression is not an lvalue"

(* Calls, including analyzer intrinsics. *)
and elab_call ctx loc name (args : Ast.expr list) : Tast.expr =
  let env = ctx.env in
  let unit_result () = mk_expr loc int_ty (Tast.Eint 0) in
  match (name, args) with
  | "__astree_wait_for_clock", [] ->
      emit ctx (mk_stmt loc Tast.Swait);
      unit_result ()
  | "__astree_assert", [ a ] ->
      let a' = bool_of_expr (elab_expr ctx a) in
      emit ctx (mk_stmt loc (Tast.Sassert a'));
      unit_result ()
  | "__astree_assume", [ a ] ->
      let a' = bool_of_expr (elab_expr ctx a) in
      emit ctx (mk_stmt loc (Tast.Sassume a'));
      unit_result ()
  | "__astree_input_range", [ x; lo; hi ] -> (
      match x.Ast.edesc with
      | Ast.Evar xn -> (
          match lookup_var env xn with
          | Some v ->
              let flo =
                match const_float_expr env lo with
                | Some f -> f
                | None -> err loc "__astree_input_range: constant bound required"
              in
              let fhi =
                match const_float_expr env hi with
                | Some f -> f
                | None -> err loc "__astree_input_range: constant bound required"
              in
              env.inputs <-
                { Tast.in_var = v; in_lo = flo; in_hi = fhi } :: env.inputs;
              unit_result ()
          | None -> err loc "unbound variable %s" xn)
      | _ -> err loc "__astree_input_range: first argument must be a variable")
  | ("fabs" | "fabsf"), [ a ] ->
      let a' = elab_expr ctx a in
      let k = if name = "fabsf" then Ctypes.Fsingle else Ctypes.Fdouble in
      let a' = cast_to (Ctypes.Tfloat k) a' in
      mk_expr loc (Ctypes.Tfloat k) (Tast.Eunop (Tast.Fabs, a'))
  | ("sqrt" | "sqrtf"), [ a ] ->
      let a' = elab_expr ctx a in
      let k = if name = "sqrtf" then Ctypes.Fsingle else Ctypes.Fdouble in
      let a' = cast_to (Ctypes.Tfloat k) a' in
      mk_expr loc (Ctypes.Tfloat k) (Tast.Eunop (Tast.Sqrt, a'))
  | _ -> (
      match Hashtbl.find_opt env.fun_sigs name with
      | None -> err loc "call to undeclared function %s" name
      | Some fs ->
          if List.length args <> List.length fs.fs_params then
            err loc "function %s expects %d argument(s), got %d" name
              (List.length fs.fs_params) (List.length args);
          let targs =
            List.map2
              (fun (_, pty) (arg : Ast.expr) ->
                match pty with
                | Ctypes.Tptr _ -> (
                    (* by-reference argument: &lval, an array lval, or a
                       pointer parameter passed through *)
                    match arg.Ast.edesc with
                    | Ast.Eaddr a -> Tast.Aref (elab_lval ctx a)
                    | Ast.Evar x -> (
                        match lookup_var env x with
                        | Some v -> (
                            match v.Tast.v_ty with
                            | Ctypes.Tptr t ->
                                Tast.Aref
                                  (mk_lval arg.Ast.eloc t (Tast.Lderef v))
                            | Ctypes.Tarray _ ->
                                Tast.Aref
                                  (mk_lval arg.Ast.eloc v.Tast.v_ty (Tast.Lvar v))
                            | _ ->
                                err arg.Ast.eloc
                                  "argument for a reference parameter must be \
                                   &lvalue or an array")
                        | None -> err arg.Ast.eloc "unbound variable %s" x)
                    | _ ->
                        err arg.Ast.eloc
                          "argument for a reference parameter must be &lvalue")
                | Ctypes.Tscalar s ->
                    let a' = elab_expr ctx arg in
                    Tast.Aval (cast_to s a')
                | t ->
                    err arg.Ast.eloc "unsupported parameter type %a" Ctypes.pp t)
              fs.fs_params args
          in
          match fs.fs_ret with
          | Ctypes.Tvoid ->
              emit ctx (mk_stmt loc (Tast.Scall (None, name, targs)));
              unit_result ()
          | Ctypes.Tscalar s ->
              let v = fresh_tmp env ~ty:fs.fs_ret ~loc in
              emit ctx (mk_stmt loc (Tast.Slocal (v, None)));
              emit ctx (mk_stmt loc (Tast.Scall (Some v, name, targs)));
              mk_expr loc s
                (Tast.Elval (mk_lval loc fs.fs_ret (Tast.Lvar v)))
          | t -> err loc "unsupported return type %a" Ctypes.pp t)

(* ------------------------------------------------------------------ *)
(* Statement elaboration                                               *)
(* ------------------------------------------------------------------ *)

let rec contains_continue (s : Ast.stmt) : bool =
  match s.Ast.sdesc with
  | Ast.Scontinue -> true
  | Ast.Sif (_, a, b) ->
      contains_continue a
      || (match b with Some b -> contains_continue b | None -> false)
  | Ast.Sblock b -> List.exists contains_continue b
  | Ast.Sswitch (_, cases) ->
      List.exists
        (fun c -> List.exists contains_continue c.Ast.case_body)
        cases
  | _ -> false (* nested loops capture their own continue *)

let rec elab_stmt (env : env) (s : Ast.stmt) : Tast.stmt list =
  let loc = s.Ast.sloc in
  let ctx = { env; prefix = [] } in
  match s.Ast.sdesc with
  | Ast.Sskip -> []
  | Ast.Sexpr e ->
      ignore (elab_expr ctx e);
      List.rev ctx.prefix
  | Ast.Sif (c, a, b) ->
      let c' = bool_of_expr (elab_expr ctx c) in
      push_scope env;
      let a' = elab_stmt env a in
      pop_scope env;
      push_scope env;
      let b' = match b with Some b -> elab_stmt env b | None -> [] in
      pop_scope env;
      List.rev (mk_stmt loc (Tast.Sif (c', a', b')) :: ctx.prefix)
  | Ast.Swhile (c, body) ->
      let li = fresh_loop env loc in
      (* the condition's effect-prefix must re-run at each iteration: it
         is prepended to the loop body and emitted before the loop *)
      let c' = bool_of_expr (elab_expr ctx c) in
      push_scope env;
      let body' = elab_stmt env body in
      pop_scope env;
      let cond_prefix = List.rev ctx.prefix in
      cond_prefix
      @ [ mk_stmt loc (Tast.Swhile (li, c', body' @ cond_prefix)) ]
  | Ast.Sdowhile (body, c) ->
      (* desugared as body; while (c) { body } *)
      push_scope env;
      let body1 = elab_stmt env body in
      pop_scope env;
      let li = fresh_loop env loc in
      let c' = bool_of_expr (elab_expr ctx c) in
      push_scope env;
      let body2 = elab_stmt env body in
      pop_scope env;
      let cond_prefix = List.rev ctx.prefix in
      body1 @ cond_prefix
      @ [ mk_stmt loc (Tast.Swhile (li, c', body2 @ cond_prefix)) ]
  | Ast.Sfor (init, cond, step, body) ->
      if contains_continue body then
        err loc "continue inside for loops is not supported by the subset";
      push_scope env;
      let init_stmts =
        match init with
        | None -> []
        | Some e ->
            let c = { env; prefix = [] } in
            ignore (elab_expr c e);
            List.rev c.prefix
      in
      let cctx = { env; prefix = [] } in
      let c' =
        match cond with
        | None -> mk_expr loc int_ty (Tast.Eint 1)
        | Some c -> bool_of_expr (elab_expr cctx c)
      in
      let cond_prefix = List.rev cctx.prefix in
      let body' = elab_stmt env body in
      let step_stmts =
        match step with
        | None -> []
        | Some e ->
            let c = { env; prefix = [] } in
            ignore (elab_expr c e);
            List.rev c.prefix
      in
      pop_scope env;
      let li = fresh_loop env loc in
      init_stmts @ cond_prefix
      @ [ mk_stmt loc (Tast.Swhile (li, c', body' @ step_stmts @ cond_prefix)) ]
  | Ast.Sblock b ->
      push_scope env;
      let out = List.concat_map (elab_stmt env) b in
      pop_scope env;
      out
  | Ast.Sreturn e ->
      let e' =
        match e with
        | None -> None
        | Some e -> (
            let e' = elab_expr ctx e in
            match env.cur_ret with
            | Ctypes.Tscalar s -> Some (cast_to s e')
            | Ctypes.Tvoid -> None
            | t -> err loc "unsupported return type %a" Ctypes.pp t)
      in
      List.rev (mk_stmt loc (Tast.Sreturn e') :: ctx.prefix)
  | Ast.Sbreak -> [ mk_stmt loc Tast.Sbreak ]
  | Ast.Scontinue -> [ mk_stmt loc Tast.Scontinue ]
  | Ast.Sswitch (e, cases) ->
      (* switch without fallthrough, desugared into an if-else chain on a
         temporary *)
      let e' = elab_expr ctx e in
      let tmp_e = save_in_tmp ctx e' in
      let default_body =
        match
          List.find_opt
            (fun c -> List.exists Option.is_none c.Ast.case_labels)
            cases
        with
        | Some c ->
            push_scope env;
            let b = List.concat_map (elab_stmt env) c.Ast.case_body in
            pop_scope env;
            b
        | None -> []
      in
      let rec chain = function
        | [] -> default_body
        | c :: rest ->
            let consts =
              List.filter_map
                (fun l ->
                  match l with
                  | None -> None
                  | Some le -> (
                      match const_int_expr env le with
                      | Some n -> Some n
                      | None -> err c.Ast.case_loc "case label is not constant"))
                c.Ast.case_labels
            in
            if consts = [] then chain rest
            else begin
              let cond =
                List.fold_left
                  (fun acc n ->
                    let cmp =
                      mk_expr c.Ast.case_loc int_ty
                        (Tast.Ebinop
                           (Tast.Eq, tmp_e,
                            cast_to tmp_e.Tast.ety
                              (mk_expr c.Ast.case_loc int_ty (Tast.Eint n))))
                    in
                    match acc with
                    | None -> Some cmp
                    | Some a ->
                        Some
                          (mk_expr c.Ast.case_loc int_ty
                             (Tast.Ebinop (Tast.Lor, a, cmp))))
                  None consts
                |> Option.get
              in
              push_scope env;
              let body = List.concat_map (elab_stmt env) c.Ast.case_body in
              pop_scope env;
              [ mk_stmt c.Ast.case_loc (Tast.Sif (cond, body, chain rest)) ]
            end
      in
      List.rev ctx.prefix @ chain cases
  | Ast.Sdecl d -> elab_local_decl env d

and elab_local_decl env (d : Ast.decl) : Tast.stmt list =
  let loc = d.Ast.d_loc in
  let ty = resolve_type env loc d.Ast.d_type in
  match d.Ast.d_storage with
  | Ast.Sto_static ->
      (* semantically a global with a fresh name (Sect. 4, footnote 2) *)
      let name = Fmt.str "%s$%s" env.cur_fun d.Ast.d_name in
      let v =
        fresh_var env ~name ~orig:d.Ast.d_name ~ty
          ~kind:(Tast.Kstatic env.cur_fun) ~volatile:d.Ast.d_volatile ~loc
      in
      let init = elab_static_init env ty d.Ast.d_init loc in
      env.hoisted_statics <- (v, init) :: env.hoisted_statics;
      bind_local env d.Ast.d_name v;
      []
  | Ast.Sto_extern -> err loc "extern not allowed inside functions"
  | Ast.Sto_none -> (
      let v =
        fresh_var env ~name:d.Ast.d_name ~orig:d.Ast.d_name ~ty
          ~kind:(Tast.Klocal env.cur_fun) ~volatile:d.Ast.d_volatile ~loc
      in
      bind_local env d.Ast.d_name v;
      match (ty, d.Ast.d_init) with
      | Ctypes.Tscalar s, Some (Ast.Init_expr e) ->
          let ctx = { env; prefix = [] } in
          let e' = elab_expr ctx e in
          List.rev ctx.prefix
          @ [ mk_stmt loc (Tast.Slocal (v, Some (cast_to s e'))) ]
      | _, None -> [ mk_stmt loc (Tast.Slocal (v, None)) ]
      | Ctypes.Tarray _, Some (Ast.Init_list items) ->
          (* element-wise assignments *)
          let decl = mk_stmt loc (Tast.Slocal (v, None)) in
          let assigns = elab_array_init env v ty items loc in
          decl :: assigns
      | _ -> err loc "unsupported initializer")

and elab_array_init env v ty items loc : Tast.stmt list =
  match ty with
  | Ctypes.Tarray (elt, _) ->
      List.concat
        (List.mapi
           (fun i item ->
             match (item, elt) with
             | Ast.Init_expr e, Ctypes.Tscalar s ->
                 let ctx = { env; prefix = [] } in
                 let e' = elab_expr ctx e in
                 let idx = mk_expr loc int_ty (Tast.Eint i) in
                 let base = mk_lval loc v.Tast.v_ty (Tast.Lvar v) in
                 let lv = mk_lval loc elt (Tast.Lindex (base, idx)) in
                 List.rev ctx.prefix
                 @ [ mk_stmt loc (Tast.Sassign (lv, cast_to s e')) ]
             | _ -> err loc "unsupported nested initializer")
           items)
  | _ -> err loc "initializer list for a non-array"

(* Static initializers must be compile-time constants. *)
and elab_static_init env (ty : Ctypes.t) (init : Ast.init option) loc : Tast.init =
  match (ty, init) with
  | _, None -> Tast.Izero
  | Ctypes.Tscalar (Ctypes.Tint _), Some (Ast.Init_expr e) -> (
      match const_int_expr env e with
      | Some n -> Tast.Iint n
      | None -> (
          match const_float_expr env e with
          | Some f -> Tast.Iint (int_of_float f)
          | None -> err loc "initializer is not a constant expression"))
  | Ctypes.Tscalar (Ctypes.Tfloat k), Some (Ast.Init_expr e) -> (
      match const_float_expr env e with
      | Some f ->
          let f =
            if k = Ctypes.Fsingle then Int32.float_of_bits (Int32.bits_of_float f)
            else f
          in
          Tast.Ifloat f
      | None -> err loc "initializer is not a constant expression")
  | Ctypes.Tarray (elt, n), Some (Ast.Init_list items) ->
      if List.length items > n then err loc "too many initializers";
      let given =
        List.map (fun i -> elab_static_init env elt (Some i) loc) items
      in
      let pad = List.init (n - List.length items) (fun _ -> Tast.Izero) in
      Tast.Iarray (given @ pad)
  | Ctypes.Tstruct tag, Some (Ast.Init_list items) -> (
      match Hashtbl.find_opt env.structs tag with
      | Some sd ->
          if List.length items > List.length sd.Ctypes.fields then
            err loc "too many initializers";
          let fields =
            List.mapi
              (fun i (fname, fty) ->
                let init = List.nth_opt items i in
                (fname, elab_static_init env fty init loc))
              sd.Ctypes.fields
          in
          Tast.Istruct fields
      | None -> err loc "unknown struct %s" tag)
  | _, Some _ -> err loc "unsupported static initializer for type %a" Ctypes.pp ty

(* ------------------------------------------------------------------ *)
(* Globals                                                             *)
(* ------------------------------------------------------------------ *)

let elab_fundef env (f : Ast.fundef) : Tast.fundef =
  let loc = f.Ast.f_loc in
  let ret = resolve_type env loc f.Ast.f_ret in
  env.cur_fun <- f.Ast.f_name;
  env.cur_ret <- ret;
  push_scope env;
  let params =
    List.map
      (fun (pname, pte) ->
        let pty = resolve_type env loc pte in
        (* array parameters decay to pointers *)
        let pty =
          match pty with Ctypes.Tarray _ -> Ctypes.Tptr pty | t -> t
        in
        let v =
          fresh_var env ~name:(Fmt.str "%s.%s" f.Ast.f_name pname) ~orig:pname
            ~ty:pty ~kind:(Tast.Kparam f.Ast.f_name) ~volatile:false ~loc
        in
        bind_local env pname v;
        match pty with
        | Ctypes.Tptr _ -> Tast.Pref v
        | _ -> Tast.Pval v)
      f.Ast.f_params
  in
  let body = List.concat_map (elab_stmt env) f.Ast.f_body in
  pop_scope env;
  { Tast.fd_name = f.Ast.f_name; fd_ret = ret; fd_params = params;
    fd_body = body; fd_loc = loc }

(** Elaborate a parsed translation unit into a typed program.  [main] is
    the user-supplied entry point (Sect. 5.3). *)
let elab_program ?(target = Ctypes.default_target) ?(main = "main")
    (u : Ast.unit_) : Tast.program =
  let env = make_env target in
  (* first pass: collect struct/typedef/enum/function signatures so that
     forward references in prototypes work *)
  List.iter
    (fun g ->
      match g with
      | Ast.Gstruct (tag, fields, loc) ->
          (* fields may reference previously defined types *)
          let fields' =
            List.map (fun (n, te) -> (n, resolve_type env loc te)) fields
          in
          Hashtbl.replace env.structs tag
            { Ctypes.sname = tag; fields = fields' }
      | Ast.Gtypedef (name, te, loc) when name <> "<fwd>" ->
          Hashtbl.replace env.typedefs name (resolve_type env loc te)
      | Ast.Genum (_, items, _loc) ->
          let next = ref 0 in
          List.iter
            (fun (n, v) ->
              let value =
                match v with
                | None -> !next
                | Some e -> (
                    match const_int_expr env e with
                    | Some x -> x
                    | None -> err _loc "enum value is not constant")
              in
              Hashtbl.replace env.enums n value;
              next := value + 1)
            items
      | Ast.Gfun f ->
          let ret = resolve_type env f.Ast.f_loc f.Ast.f_ret in
          let params =
            List.map
              (fun (n, te) ->
                let t = resolve_type env f.Ast.f_loc te in
                let t = match t with Ctypes.Tarray _ -> Ctypes.Tptr t | t -> t in
                (n, t))
              f.Ast.f_params
          in
          Hashtbl.replace env.fun_sigs f.Ast.f_name
            { fs_ret = ret; fs_params = params }
      | Ast.Gfundecl (name, rte, params, loc) ->
          let ret = resolve_type env loc rte in
          let params =
            List.map
              (fun (n, te) ->
                let t = resolve_type env loc te in
                let t = match t with Ctypes.Tarray _ -> Ctypes.Tptr t | t -> t in
                (n, t))
              params
          in
          Hashtbl.replace env.fun_sigs name { fs_ret = ret; fs_params = params }
      | _ -> ())
    u.Ast.u_globals;
  (* second pass: globals and function bodies in order *)
  let funs = ref [] in
  List.iter
    (fun g ->
      match g with
      | Ast.Gdecl d ->
          if d.Ast.d_storage = Ast.Sto_extern && d.Ast.d_init = None then
            (* extern declaration without definition: create the variable
               anyway; the linker merges duplicates *)
            ();
          let ty = resolve_type env d.Ast.d_loc d.Ast.d_type in
          if not (Hashtbl.mem env.globals d.Ast.d_name) then begin
            let v =
              fresh_var env ~name:d.Ast.d_name ~orig:d.Ast.d_name ~ty
                ~kind:Tast.Kglobal ~volatile:d.Ast.d_volatile ~loc:d.Ast.d_loc
            in
            Hashtbl.replace env.globals d.Ast.d_name v;
            let init = elab_static_init env ty d.Ast.d_init d.Ast.d_loc in
            env.global_inits <- (v, init) :: env.global_inits
          end
      | Ast.Gfun f -> funs := elab_fundef env f :: !funs
      | _ -> ())
    u.Ast.u_globals;
  let funs = List.rev !funs in
  if not (List.exists (fun fd -> fd.Tast.fd_name = main) funs) then
    err Loc.dummy "entry point %s not found" main;
  {
    Tast.p_file = u.Ast.u_file;
    p_globals = List.rev env.global_inits @ List.rev env.hoisted_statics;
    p_structs =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) env.structs []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
    p_funs = List.map (fun fd -> (fd.Tast.fd_name, fd)) funs;
    p_inputs = List.rev env.inputs;
    p_main = main;
    p_target = target;
  }
