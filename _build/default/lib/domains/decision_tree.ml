(** The decision tree abstract domain (Sect. 6.2.4): a simple relational
    domain relating boolean variables to numerical variables.

    A pack holds an ordered list of boolean variables b_1 < ... < b_m
    (ordered as in BDDs [6]) and a set of numerical variables.  An
    abstract element is a binary decision tree branching on the booleans
    in order, whose leaves carry one interval per numerical variable of
    the pack (the generic "arithmetic abstract domain at the leaves" —
    "in practice, the interval domain was sufficient").  Subtrees equal
    on both branches are shared opportunistically (collapsed). *)

module F = Astree_frontend
module VarMap = F.Tast.VarMap

(** Leaf environment: intervals for the pack's numerical variables.
    [None] means the whole leaf is unreachable (bottom). *)
type leaf = Itv.t VarMap.t option

type tree =
  | Leaf of leaf
  | Node of F.Tast.var * tree * tree  (** boolean var, false-branch, true-branch *)

type t = {
  bools : F.Tast.var array;     (** pack booleans, branch order *)
  nums : F.Tast.var array;      (** pack numerical variables *)
  tree : tree;
}

(* ------------------------------------------------------------------ *)
(* Construction and normalization                                      *)
(* ------------------------------------------------------------------ *)

let leaf_equal (a : leaf) (b : leaf) : bool =
  match (a, b) with
  | None, None -> true
  | Some ma, Some mb -> VarMap.equal Itv.equal ma mb
  | _ -> false

let rec tree_equal (a : tree) (b : tree) : bool =
  a == b
  ||
  match (a, b) with
  | Leaf la, Leaf lb -> leaf_equal la lb
  | Node (va, fa, ta), Node (vb, fb, tb) ->
      F.Tast.Var.equal va vb && tree_equal fa fb && tree_equal ta tb
  | _ -> false

(* Collapse a node whose branches are equal (opportunistic sharing). *)
let mk_node v f t = if tree_equal f t then f else Node (v, f, t)

(* The branch order must be consistent between [tree_branch] (pack rank)
   and [tree_map2] (variable id): we canonicalize packs by sorting the
   boolean variables by id, which makes the two orders coincide. *)
let sort_pack (a : F.Tast.var array) : F.Tast.var array =
  let a = Array.copy a in
  Array.sort F.Tast.Var.compare a;
  a

let top (bools : F.Tast.var array) (nums : F.Tast.var array) : t =
  { bools = sort_pack bools; nums; tree = Leaf (Some VarMap.empty) }

let bottom (bools : F.Tast.var array) (nums : F.Tast.var array) : t =
  { bools = sort_pack bools; nums; tree = Leaf None }

let rec tree_is_bot = function
  | Leaf None -> true
  | Leaf (Some _) -> false
  | Node (_, f, t) -> tree_is_bot f && tree_is_bot t

let is_bot (d : t) = tree_is_bot d.tree

let mem_bool (d : t) v = Array.exists (F.Tast.Var.equal v) d.bools
let mem_num (d : t) v = Array.exists (F.Tast.Var.equal v) d.nums

let bool_rank (d : t) (v : F.Tast.var) : int =
  let n = Array.length d.bools in
  let rec go i =
    if i >= n then max_int
    else if F.Tast.Var.equal d.bools.(i) v then i
    else go (i + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Pointwise combination                                               *)
(* ------------------------------------------------------------------ *)

let leaf_join (a : leaf) (b : leaf) : leaf =
  match (a, b) with
  | None, x | x, None -> x
  | Some ma, Some mb ->
      (* missing entries are top: the join keeps only entries present in
         both maps *)
      Some
        (VarMap.merge
           (fun _ ia ib ->
             match (ia, ib) with
             | Some ia, Some ib ->
                 let j = Itv.join ia ib in
                 Some j
             | _ -> None)
           ma mb)

let leaf_meet (a : leaf) (b : leaf) : leaf =
  match (a, b) with
  | None, _ | _, None -> None
  | Some ma, Some mb ->
      let m =
        VarMap.merge
          (fun _ ia ib ->
            match (ia, ib) with
            | Some ia, Some ib -> Some (Itv.meet ia ib)
            | Some i, None | None, Some i -> Some i
            | None, None -> None)
          ma mb
      in
      if VarMap.exists (fun _ i -> Itv.is_bot i) m then None else Some m

let leaf_widen ~thresholds (a : leaf) (b : leaf) : leaf =
  match (a, b) with
  | None, x | x, None -> x
  | Some ma, Some mb ->
      Some
        (VarMap.merge
           (fun _ ia ib ->
             match (ia, ib) with
             | Some ia, Some ib -> Some (Itv.widen ~thresholds ia ib)
             | _ -> None)
           ma mb)

let leaf_narrow (a : leaf) (b : leaf) : leaf =
  match (a, b) with
  | None, _ -> None
  | x, None -> x
  | Some ma, Some mb ->
      Some
        (VarMap.merge
           (fun _ ia ib ->
             match (ia, ib) with
             | Some ia, Some ib -> Some (Itv.narrow ia ib)
             | Some i, None -> Some i
             | None, Some _ -> None
             | None, None -> None)
           ma mb)

let leaf_subset (a : leaf) (b : leaf) : bool =
  match (a, b) with
  | None, _ -> true
  | Some _, None -> false
  | Some ma, Some mb ->
      VarMap.for_all
        (fun v ib ->
          match VarMap.find_opt v ma with
          | Some ia -> Itv.subset ia ib
          | None -> false (* a unconstrained, b constrained *))
        mb

(* Generic structural merge of two trees with the same variable order. *)
let rec tree_map2 (f : leaf -> leaf -> leaf) (a : tree) (b : tree) : tree =
  if a == b then a
  else
    match (a, b) with
    | Leaf la, Leaf lb -> Leaf (f la lb)
    | Node (v, fa, ta), Leaf _ -> mk_node v (tree_map2 f fa b) (tree_map2 f ta b)
    | Leaf _, Node (v, fb, tb) -> mk_node v (tree_map2 f a fb) (tree_map2 f a tb)
    | Node (va, fa, ta), Node (vb, fb, tb) ->
        let ca = va.F.Tast.v_id and cb = vb.F.Tast.v_id in
        if ca = cb then mk_node va (tree_map2 f fa fb) (tree_map2 f ta tb)
        else if ca < cb then mk_node va (tree_map2 f fa b) (tree_map2 f ta b)
        else mk_node vb (tree_map2 f a fb) (tree_map2 f a tb)

let join (a : t) (b : t) : t = { a with tree = tree_map2 leaf_join a.tree b.tree }

let meet (a : t) (b : t) : t = { a with tree = tree_map2 leaf_meet a.tree b.tree }

let widen ~thresholds (a : t) (b : t) : t =
  { a with tree = tree_map2 (leaf_widen ~thresholds) a.tree b.tree }

let narrow (a : t) (b : t) : t =
  { a with tree = tree_map2 leaf_narrow a.tree b.tree }

let rec tree_subset (a : tree) (b : tree) : bool =
  if a == b then true
  else
    match (a, b) with
    | Leaf la, Leaf lb -> leaf_subset la lb
    | Node (_, fa, ta), Leaf _ -> tree_subset fa b && tree_subset ta b
    | Leaf _, Node (_, fb, tb) -> tree_subset a fb && tree_subset a tb
    | Node (va, fa, ta), Node (vb, fb, tb) ->
        let ca = va.F.Tast.v_id and cb = vb.F.Tast.v_id in
        if ca = cb then tree_subset fa fb && tree_subset ta tb
        else if ca < cb then tree_subset fa b && tree_subset ta b
        else tree_subset a fb && tree_subset a tb

let subset (a : t) (b : t) : bool = tree_subset a.tree b.tree

let equal (a : t) (b : t) : bool = tree_equal a.tree b.tree

(* ------------------------------------------------------------------ *)
(* Per-leaf transformations                                            *)
(* ------------------------------------------------------------------ *)

(** Apply [f] to every leaf, giving it the path (boolean valuation so
    far).  The path maps boolean var ids to their forced value. *)
let map_leaves_with_path (f : (int * bool) list -> leaf -> leaf) (d : t) : t =
  let rec go path = function
    | Leaf l -> Leaf (f (List.rev path) l)
    | Node (v, fb, tb) ->
        mk_node v
          (go ((v.F.Tast.v_id, false) :: path) fb)
          (go ((v.F.Tast.v_id, true) :: path) tb)
  in
  { d with tree = go [] d.tree }

let map_leaves (f : leaf -> leaf) (d : t) : t =
  map_leaves_with_path (fun _ l -> f l) d

(* Insert a branch on boolean [v] (pack order respected) applying
   [on_false]/[on_true] to the corresponding restrictions of the tree. *)
let rec tree_branch (rank : F.Tast.var -> int) (v : F.Tast.var)
    (on_false : tree -> tree) (on_true : tree -> tree) (t : tree) : tree =
  match t with
  | Node (w, fb, tb) when F.Tast.Var.equal w v ->
      mk_node v (on_false fb) (on_true tb)
  | Node (w, fb, tb) when rank w < rank v ->
      mk_node w
        (tree_branch rank v on_false on_true fb)
        (tree_branch rank v on_false on_true tb)
  | t ->
      (* v does not appear yet: split here *)
      mk_node v (on_false t) (on_true t)

(* ------------------------------------------------------------------ *)
(* Transfer functions                                                  *)
(* ------------------------------------------------------------------ *)

(** Guard: restrict to the branches where pack boolean [v] = [value]. *)
let guard_bool (d : t) (v : F.Tast.var) (value : bool) : t =
  if not (mem_bool d v) then d
  else
    let kill = Leaf None in
    let rank w = bool_rank d w in
    {
      d with
      tree =
        tree_branch rank v
          (fun t -> if value then kill else t)
          (fun t -> if value then t else kill)
          d.tree;
    }

(** Assignment of a boolean variable to a known truth value along each
    path: [b := value].  The new tree forgets b's previous branching and
    forces the branch. *)
let assign_bool_const (d : t) (v : F.Tast.var) (value : bool) : t =
  if not (mem_bool d v) then d
  else begin
    (* merge b's branches (forget), then force the branch *)
    let rec forget_b = function
      | Node (w, fb, tb) when F.Tast.Var.equal w v -> tree_map2 leaf_join fb tb
      | Node (w, fb, tb) -> mk_node w (forget_b fb) (forget_b tb)
      | Leaf _ as l -> l
    in
    let merged = forget_b d.tree in
    let kill = Leaf None in
    let rank w = bool_rank d w in
    {
      d with
      tree =
        tree_branch rank v
          (fun t -> if value then kill else t)
          (fun t -> if value then t else kill)
          merged;
    }
  end

(** Assignment [b := expr] where [expr]'s truth value may depend on the
    path: [eval path leaf] must return [Some true/false] when decided on
    that path, [None] when unknown.  Each leaf is re-routed to the
    corresponding branch of b. *)
let assign_bool (d : t) (v : F.Tast.var)
    (eval : (int * bool) list -> leaf -> bool option) : t =
  if not (mem_bool d v) then d
  else begin
    let rank w = bool_rank d w in
    (* first forget b (so paths do not mention the stale value),
       remembering for each residual path what eval says *)
    let rec forget_b = function
      | Node (w, fb, tb) when F.Tast.Var.equal w v -> tree_map2 leaf_join fb tb
      | Node (w, fb, tb) -> mk_node w (forget_b fb) (forget_b tb)
      | Leaf _ as l -> l
    in
    let merged = forget_b d.tree in
    let rec route path = function
      | Node (w, fb, tb) ->
          mk_node w
            (route ((w.F.Tast.v_id, false) :: path) fb)
            (route ((w.F.Tast.v_id, true) :: path) tb)
      | Leaf l as leaf -> (
          match eval (List.rev path) l with
          | Some true -> tree_branch rank v (fun _ -> Leaf None) (fun t -> t) leaf
          | Some false -> tree_branch rank v (fun t -> t) (fun _ -> Leaf None) leaf
          | None -> leaf)
    in
    { d with tree = route [] merged }
  end

(** Assignment [b := cond] where the truth of [cond] may *split* a leaf:
    [split path leaf] returns the pair (leaf restricted to cond true,
    leaf restricted to cond false); each part is routed to the matching
    branch of b.  This is how [B := (X == 0)] records X's refinement in
    both branches (the paper's Sect. 6.2.4 example). *)
let assign_bool_split (d : t) (v : F.Tast.var)
    (split : (int * bool) list -> leaf -> leaf * leaf) : t =
  if not (mem_bool d v) then d
  else begin
    let rank w = bool_rank d w in
    let rec forget_b = function
      | Node (w, fb, tb) when F.Tast.Var.equal w v -> tree_map2 leaf_join fb tb
      | Node (w, fb, tb) -> mk_node w (forget_b fb) (forget_b tb)
      | Leaf _ as l -> l
    in
    let merged = forget_b d.tree in
    let rec route path = function
      | Node (w, fb, tb) ->
          mk_node w
            (route ((w.F.Tast.v_id, false) :: path) fb)
            (route ((w.F.Tast.v_id, true) :: path) tb)
      | Leaf l ->
          let lt, lf = split (List.rev path) l in
          tree_branch rank v (fun _ -> Leaf lf) (fun _ -> Leaf lt) (Leaf l)
    in
    { d with tree = route [] merged }
  end

(** Assignment of a numerical pack variable: [x := e] evaluated per leaf
    via [eval path leaf], which returns the new interval for x in that
    context. *)
let assign_num (d : t) (x : F.Tast.var)
    (eval : (int * bool) list -> leaf -> Itv.t) : t =
  if not (mem_num d x) then d
  else
    map_leaves_with_path
      (fun path l ->
        match l with
        | None -> None
        | Some m ->
            let i = eval path l in
            if Itv.is_bot i then None else Some (VarMap.add x i m))
      d

(** Guard on a numerical condition: [refine path leaf] returns the
    refined leaf (or None if the condition is unsatisfiable there). *)
let guard_num (d : t) (refine : (int * bool) list -> leaf -> leaf) : t =
  map_leaves_with_path refine d

(** Forget all knowledge about a numerical variable. *)
let forget_num (d : t) (x : F.Tast.var) : t =
  map_leaves
    (function None -> None | Some m -> Some (VarMap.remove x m))
    d

(** Forget a boolean variable (e.g. assigned an unknown value). *)
let forget_bool (d : t) (v : F.Tast.var) : t =
  if not (mem_bool d v) then d
  else
    let rec forget_b = function
      | Node (w, fb, tb) when F.Tast.Var.equal w v -> tree_map2 leaf_join fb tb
      | Node (w, fb, tb) -> mk_node w (forget_b fb) (forget_b tb)
      | Leaf _ as l -> l
    in
    { d with tree = forget_b d.tree }

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

(** Overall interval of a pack numerical variable (join over leaves). *)
let get_num (d : t) (x : F.Tast.var) : Itv.t option =
  if not (mem_num d x) then None
  else begin
    let acc = ref Itv.Bot in
    let found = ref true in
    let rec go = function
      | Leaf None -> ()
      | Leaf (Some m) -> (
          match VarMap.find_opt x m with
          | Some i -> acc := (if Itv.is_bot !acc then i else Itv.join !acc i)
          | None -> found := false)
      | Node (_, f, t) ->
          go f;
          go t
    in
    go d.tree;
    if !found && not (Itv.is_bot !acc) then Some !acc else None
  end

(** Possible truth values of a pack boolean: (can_be_false, can_be_true). *)
let get_bool (d : t) (v : F.Tast.var) : bool * bool =
  if not (mem_bool d v) then (true, true)
  else begin
    let can_f = ref false and can_t = ref false in
    let rec go forced = function
      | Leaf None -> ()
      | Leaf (Some _) -> (
          match forced with
          | Some true -> can_t := true
          | Some false -> can_f := true
          | None ->
              can_f := true;
              can_t := true)
      | Node (w, fb, tb) when F.Tast.Var.equal w v ->
          go (Some false) fb;
          go (Some true) tb
      | Node (_, fb, tb) ->
          go forced fb;
          go forced tb
    in
    go None d.tree;
    (!can_f, !can_t)
  end

let rec tree_size = function
  | Leaf _ -> 1
  | Node (_, f, t) -> 1 + tree_size f + tree_size t

let size (d : t) = tree_size d.tree

(** Count of decision-tree assertions carried by this element, for the
    invariant census (Sect. 9.4.1): one per live branching node. *)
let count_assertions (d : t) : int =
  let rec go = function
    | Leaf _ -> 0
    | Node (_, f, t) -> 1 + go f + go t
  in
  go d.tree

let pp ppf (d : t) =
  let rec go pad ppf = function
    | Leaf None -> Fmt.pf ppf "%s_|_" pad
    | Leaf (Some m) ->
        if VarMap.is_empty m then Fmt.pf ppf "%sT" pad
        else
          Fmt.pf ppf "%s{%a}" pad
            Fmt.(
              list ~sep:comma (fun ppf (v, i) ->
                  Fmt.pf ppf "%s:%a" v.F.Tast.v_name Itv.pp i))
            (VarMap.bindings m)
    | Node (v, f, t) ->
        Fmt.pf ppf "%s%s?@\n%a@\n%a" pad v.F.Tast.v_name
          (go (pad ^ "  ")) t (go (pad ^ "  ")) f
  in
  go "" ppf d.tree
