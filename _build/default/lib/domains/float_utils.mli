(** Directed-rounding helpers for sound floating-point interval
    arithmetic (Sect. 6.2.1: "always perform rounding in the right
    direction").

    The [*_up]/[*_down] operations return sound upper/lower bounds of
    the exact real result of one IEEE operation, using error-compensated
    rounding (TwoSum / FMA residuals): exact operations stay exact,
    inexact ones move one ulp outward only when needed.  Exactness
    matters both for precision and for the unit-coefficient detection of
    the octagon transfer functions. *)

(** Next representable binary64 above (infinity is a fixpoint). *)
val fsucc : float -> float

(** Next representable binary64 below. *)
val fpred : float -> float

(** Conservative one-ulp outward rounding (no residual check). *)
val round_up : float -> float

val round_down : float -> float

(** {1 Directed operations} *)

val add_up : float -> float -> float
val add_down : float -> float -> float
val sub_up : float -> float -> float
val sub_down : float -> float -> float

(** [0 * x = 0] even for infinite [x] (exact interval arithmetic
    convention for bound products). *)
val mul_up : float -> float -> float

val mul_down : float -> float -> float
val div_up : float -> float -> float
val div_down : float -> float -> float
val sqrt_up : float -> float
val sqrt_down : float -> float

val mul_zero_aware : float -> float -> float

(** {1 binary32 support} *)

(** Round to binary32, to nearest. *)
val to_single : float -> float

(** Next binary32 above / below. *)
val fsucc32 : float -> float

val fpred32 : float -> float

(** Sound binary32 bracketing of a double: [lo <= x <= hi] with both
    bounds binary32 values. *)
val single_bounds : float -> float * float

(** {1 Error model constants} *)

(** Greatest relative error of a float w.r.t. a real (the constant [f]
    of Sect. 6.2.3): 2^-24 / 2^-53. *)
val rel_err : Astree_frontend.Ctypes.fkind -> float

(** Absolute error floor (smallest denormal). *)
val abs_err : Astree_frontend.Ctypes.fkind -> float

(** Largest finite value of a kind. *)
val fmax : Astree_frontend.Ctypes.fkind -> float

(** Unit in the last place (binary64). *)
val ulp : float -> float

(** Saturating native-int helpers for integer interval bounds;
    [min_int]/[max_int] act as -oo/+oo. *)
module Sat : sig
  val neg_inf : int
  val pos_inf : int
  val is_inf : int -> bool
  val neg : int -> int
  val add : int -> int -> int
  val sub : int -> int -> int
  val mul : int -> int -> int

  (** Truncated division; the caller excludes 0 divisors. *)
  val div : int -> int -> int
end
