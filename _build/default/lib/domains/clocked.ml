(** The clocked abstract domain (Sect. 6.2.1).

    A great number of interval false alarms originate from possible
    overflows in counters triggered by external events; those overflows
    cannot happen because events are counted at most once per clock cycle
    and the number of cycles is bounded by the maximal continuous
    operating time.

    The clocked domain is parametric in an underlying scalar domain X#
    (here {!Itv}); its elements are triples (v, v-, v+) representing the
    set of values x such that x in gamma(v), x - clock in gamma(v-) and
    x + clock in gamma(v+), where clock is a hidden variable incremented
    at each [__astree_wait_for_clock()]. *)

type t = {
  v : Itv.t;        (** the value itself *)
  vminus : Itv.t;   (** value - clock *)
  vplus : Itv.t;    (** value + clock *)
}

let bot = { v = Itv.Bot; vminus = Itv.Bot; vplus = Itv.Bot }

let is_bot c = Itv.is_bot c.v

(* The hidden clock is an integer counter; cells may be floats.  Coerce
   the clock to the cell's kind before mixing. *)
let clock_as (i : Itv.t) (clock : Itv.t) : Itv.t =
  match i with
  | Itv.Float _ -> Itv.int_to_float clock
  | _ -> clock

(** Inject a plain interval: the triple records the value's current
    offsets to the clock. *)
let of_itv (i : Itv.t) (clock : Itv.t) : t =
  if Itv.is_bot i || Itv.is_bot clock then
    { v = i; vminus = Itv.Bot; vplus = Itv.Bot }
  else
    let c = clock_as i clock in
    { v = i; vminus = Itv.sub i c; vplus = Itv.add i c }

(** Forget the clock information. *)
let to_itv c = c.v

let equal a b =
  Itv.equal a.v b.v && Itv.equal a.vminus b.vminus && Itv.equal a.vplus b.vplus

let pp ppf c =
  Fmt.pf ppf "(v=%a, v-clk=%a, v+clk=%a)" Itv.pp c.v Itv.pp c.vminus Itv.pp
    c.vplus

(* ------------------------------------------------------------------ *)
(* Reduction                                                           *)
(* ------------------------------------------------------------------ *)

(** Reduce the triple knowing the current clock range: the concretization
    is the intersection of the three components' constraints, so
    v may be tightened to v ∩ (v- + clock) ∩ (v+ - clock). *)
let reduce (clock : Itv.t) (c : t) : t =
  if is_bot c then bot
  else
    let ck = clock_as c.v clock in
    let from_minus =
      if Itv.is_bot c.vminus || Itv.is_bot ck then c.v
      else Itv.add c.vminus ck
    in
    let from_plus =
      if Itv.is_bot c.vplus || Itv.is_bot ck then c.v
      else Itv.sub c.vplus ck
    in
    let v = Itv.meet c.v (Itv.meet from_minus from_plus) in
    if Itv.is_bot v then bot else { c with v }

(* ------------------------------------------------------------------ *)
(* Lattice                                                             *)
(* ------------------------------------------------------------------ *)

(* In a non-bottom triple, a [Bot] clock component means "no information"
   (top), not emptiness: emptiness is carried by the [v] component.  The
   component-wise operations below implement that convention. *)

let cjoin a b = if Itv.is_bot a || Itv.is_bot b then Itv.Bot else Itv.join a b

let cmeet a b =
  if Itv.is_bot a then b else if Itv.is_bot b then a else Itv.meet a b

let cwiden ~thresholds a b =
  if Itv.is_bot a || Itv.is_bot b then Itv.Bot
  else Itv.widen ~thresholds a b

let cnarrow a b =
  if Itv.is_bot a then b else if Itv.is_bot b then a else Itv.narrow a b

let csubset a b =
  Itv.is_bot b || ((not (Itv.is_bot a)) && Itv.subset a b)

let join a b =
  if is_bot a then b
  else if is_bot b then a
  else
    {
      v = Itv.join a.v b.v;
      vminus = cjoin a.vminus b.vminus;
      vplus = cjoin a.vplus b.vplus;
    }

let meet a b =
  if is_bot a || is_bot b then bot
  else
    let v = Itv.meet a.v b.v in
    if Itv.is_bot v then bot
    else
      let vminus = cmeet a.vminus b.vminus in
      let vplus = cmeet a.vplus b.vplus in
      (* an empty meet on a clock component signals contradiction *)
      if
        (Itv.is_bot vminus && not (Itv.is_bot a.vminus || Itv.is_bot b.vminus))
        || (Itv.is_bot vplus && not (Itv.is_bot a.vplus || Itv.is_bot b.vplus))
      then bot
      else { v; vminus; vplus }

let widen ~thresholds a b =
  if is_bot a then b
  else if is_bot b then a
  else
    (* The clock components of non-counter cells drift by one every tick;
       threshold widening would chase them up the whole ladder, forcing a
       widening round per threshold and destabilizing unrelated
       constraints.  An unstable clock bound carries no information, so
       it jumps straight to infinity; the *useful* bounds (e.g.
       counter - clock <= 0) are genuinely invariant and never widen. *)
    let no_thresholds = Thresholds.none in
    {
      v = Itv.widen ~thresholds a.v b.v;
      vminus = cwiden ~thresholds:no_thresholds a.vminus b.vminus;
      vplus = cwiden ~thresholds:no_thresholds a.vplus b.vplus;
    }

let narrow a b =
  if is_bot a || is_bot b then bot
  else
    {
      v = Itv.narrow a.v b.v;
      vminus = cnarrow a.vminus b.vminus;
      vplus = cnarrow a.vplus b.vplus;
    }

let subset a b =
  is_bot a
  || ((not (is_bot b))
     && Itv.subset a.v b.v
     && csubset a.vminus b.vminus
     && csubset a.vplus b.vplus)

(* ------------------------------------------------------------------ *)
(* Transfer functions                                                  *)
(* ------------------------------------------------------------------ *)

(** Effect of a clock tick: the hidden clock increments, so v- shifts
    down by one and v+ up by one (x - (clock+1) = (x - clock) - 1). *)
let tick (c : t) : t =
  if is_bot c then bot
  else
    let one = Itv.int_const 1 in
    let shift i one =
      match i with
      | Itv.Bot -> Itv.Bot
      | Itv.Float _ -> Itv.sub i (Itv.float_const 1.0)
      | Itv.Int _ -> Itv.sub i one
    in
    let shift_up i =
      match i with
      | Itv.Bot -> Itv.Bot
      | Itv.Float _ -> Itv.add i (Itv.float_const 1.0)
      | Itv.Int _ -> Itv.add i one
    in
    { c with vminus = shift c.vminus one; vplus = shift_up c.vplus }

(** Pointwise lifting of a unary interval operation. *)
let lift1_loose (f : Itv.t -> Itv.t) (clock : Itv.t) (c : t) : t =
  of_itv (f c.v) clock

(** Addition of a constant preserves the clock offsets exactly
    (x + k - clock = (x - clock) + k). *)
let add_const (k : Itv.t) (c : t) : t =
  if is_bot c then bot
  else
    {
      v = Itv.add c.v k;
      vminus = (if Itv.is_bot c.vminus then Itv.Bot else Itv.add c.vminus k);
      vplus = (if Itv.is_bot c.vplus then Itv.Bot else Itv.add c.vplus k);
    }

(** Generic binary operation: compute on the value component and rebuild
    the triple from the clock. *)
let lift2_loose (f : Itv.t -> Itv.t -> Itv.t) (clock : Itv.t) (a : t) (b : t) : t
    =
  if is_bot a || is_bot b then bot else of_itv (f a.v b.v) clock

(** Incrementation by at most one per cycle (the counter pattern): when
    the analyzer sees [x := x + k] with k in [0, 1], the v- component is
    stable under a subsequent tick, which is what bounds the counter. *)
let incr_bounded (k : Itv.t) (c : t) : t = add_const k c
