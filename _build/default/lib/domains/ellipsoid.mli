(** The ellipsoid abstract domain epsilon(a,b) (Sect. 6.2.3), for
    second-order digital filters

    {v
    if (B) { Y := i; X := j; }
    else   { X' := aX - bY + t; Y := X; X := X'; }
    v}

    With [0 < b < 1] and [a^2 - 4b < 0], the constraint
    [X^2 - aXY + bY^2 <= k] is preserved by the affine transformation
    (Prop. 1 of the paper), provided [k >= (tM / (1 - sqrt b))^2] where
    [|t| <= tM].  An abstract element maps ordered variable pairs to
    such bounds [k]; [+infinity] (or absence) means no constraint. *)

(** Constraint maps are keyed by ordered pairs of variable ids. *)
module PairMap : Map.S with type key = int * int

type t = {
  a : float;
  b : float;
  fkind : Astree_frontend.Ctypes.fkind;
  vars : Astree_frontend.Tast.var array;
  k : float PairMap.t;
}

(** Do the coefficients satisfy the conditions of Prop. 1
    ([0 < b < 1], [a^2 - 4b < 0])? *)
val valid_coeffs : a:float -> b:float -> bool

(** Create the top element of epsilon(a,b) over a pack.
    @raise Invalid_argument when the coefficients violate Prop. 1. *)
val make :
  a:float ->
  b:float ->
  fkind:Astree_frontend.Ctypes.fkind ->
  Astree_frontend.Tast.var array ->
  t

val mem_var : t -> Astree_frontend.Tast.var -> bool

(** Constraint bound for the pair (x, y); [+infinity] when absent. *)
val find : t -> Astree_frontend.Tast.var -> Astree_frontend.Tast.var -> float

val set : t -> Astree_frontend.Tast.var -> Astree_frontend.Tast.var -> float -> t

(** Remove every constraint mentioning a variable (case 3 of the paper's
    assignment, and initialization). *)
val forget : t -> Astree_frontend.Tast.var -> t

(** {1 The delta function} *)

(** [delta e ~t_max k]: the bound propagated through
    [X' := aX - bY + t] with [|t| <= t_max], inflated by the float
    relative error [f] exactly as the paper's formula prescribes. *)
val delta : t -> t_max:float -> float -> float

(** The minimal self-stable bound [(tM / (1 - sqrt b))^2] of Prop. 1. *)
val stable_bound : t -> t_max:float -> float

(** {1 Transfer functions} *)

(** Case 1: [x := y] — constraints containing [y] transfer to [x]. *)
val assign_copy : t -> Astree_frontend.Tast.var -> Astree_frontend.Tast.var -> t

(** Case 2: the filter update [x := a.y - b.z + t]. *)
val assign_filter :
  t ->
  Astree_frontend.Tast.var ->
  Astree_frontend.Tast.var ->
  Astree_frontend.Tast.var ->
  t_max:float ->
  t

(** Case 3: assignment of any other shape (forgets [x]). *)
val assign_other : t -> Astree_frontend.Tast.var -> t

(** {1 Lattice operations} (component-wise on bounds) *)

val join : t -> t -> t
val meet : t -> t -> t
val widen : thresholds:Thresholds.t -> t -> t -> t
val narrow : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool
val is_top : t -> bool

(** {1 Reduction with the interval domain} *)

type oracle = Astree_frontend.Tast.var -> float * float

(** Tighten [r(x, y)] from the variables' intervals; when
    [equal_vars x y] holds the much more precise [(1 - a + b) X^2]
    bound is used (the paper's reduction steps). *)
val reduce_from_intervals :
  ?equal_vars:(Astree_frontend.Tast.var -> Astree_frontend.Tast.var -> bool) ->
  oracle ->
  t ->
  Astree_frontend.Tast.var ->
  Astree_frontend.Tast.var ->
  t

(** The paper's bound extraction
    [|X'| <= 2 sqrt(b . r/(4b - a^2))], for the pair (x, y). *)
val extract_bound :
  t -> Astree_frontend.Tast.var -> Astree_frontend.Tast.var -> float option

(** Best magnitude bound derivable for a variable from any of its
    constraints. *)
val best_bound : t -> Astree_frontend.Tast.var -> float option

(** Number of finite constraints (census, Sect. 9.4.1). *)
val count_constraints : t -> int

val pp : Format.formatter -> t -> unit
