(** Widening threshold sets (Sect. 7.1.2).

    A threshold set is a finite, sorted array of numbers containing
    -oo and +oo.  The default is the paper's geometric ramp
    (+-alpha.lambda^k). *)

type t = float array  (** sorted ascending; first = -oo, last = +oo *)

(** [geometric ~alpha ~lambda ~n ()] builds (+-alpha.lambda^k) for
    k in [0, n], plus 0, the largest finite binary32/binary64 values
    (so widened float bounds can park exactly at a type's range) and
    the infinities.  Defaults: alpha = 1, lambda = 10, n = 40. *)
val geometric : ?alpha:float -> ?lambda:float -> ?n:int -> unit -> t

(** Threshold set from explicit user-supplied values (the simple
    parametrization "easily found in the program documentation",
    Sect. 10); negations, 0 and infinities are added. *)
val of_list : float list -> t

(** The degenerate set [{-oo, +oo}]: the classical interval widening. *)
val none : t

val default : t
val size : t -> int

(** Smallest threshold >= v. *)
val above : t -> float -> float

(** Largest threshold <= v. *)
val below : t -> float -> float

val pp : Format.formatter -> t -> unit
