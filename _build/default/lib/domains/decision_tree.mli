(** The decision tree abstract domain (Sect. 6.2.4): a simple relational
    domain relating boolean variables to numerical variables.

    An abstract element is a binary decision tree branching on the
    pack's booleans (in a fixed, BDD-like order), whose leaves carry one
    interval per numerical variable of the pack.  Equal subtrees are
    shared opportunistically (collapsed). *)

module VarMap = Astree_frontend.Tast.VarMap

(** Leaf environment: intervals for the pack's numerical variables;
    [None] means the leaf is unreachable. *)
type leaf = Itv.t VarMap.t option

type tree =
  | Leaf of leaf
  | Node of Astree_frontend.Tast.var * tree * tree
      (** boolean variable, false-branch, true-branch *)

type t = {
  bools : Astree_frontend.Tast.var array;  (** pack booleans, branch order *)
  nums : Astree_frontend.Tast.var array;   (** pack numerical variables *)
  tree : tree;
}

(** {1 Construction} *)

val top : Astree_frontend.Tast.var array -> Astree_frontend.Tast.var array -> t
val bottom : Astree_frontend.Tast.var array -> Astree_frontend.Tast.var array -> t
val is_bot : t -> bool
val mem_bool : t -> Astree_frontend.Tast.var -> bool
val mem_num : t -> Astree_frontend.Tast.var -> bool

(** {1 Lattice operations} *)

val join : t -> t -> t
val meet : t -> t -> t
val widen : thresholds:Thresholds.t -> t -> t -> t
val narrow : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool

(** {1 Transfer functions}

    Leaf callbacks receive the path taken so far as an association list
    from boolean variable ids to their forced values. *)

(** Restrict to the branches where a pack boolean has a given value. *)
val guard_bool : t -> Astree_frontend.Tast.var -> bool -> t

(** Assign a known truth value to a pack boolean. *)
val assign_bool_const : t -> Astree_frontend.Tast.var -> bool -> t

(** [assign_bool d b eval]: per-path boolean assignment; [eval]
    returns the rhs truth value when decided on that path. *)
val assign_bool :
  t ->
  Astree_frontend.Tast.var ->
  ((int * bool) list -> leaf -> bool option) ->
  t

(** [assign_bool_split d b split]: boolean assignment that may split a
    leaf — [split] returns the leaf restricted to rhs-true and rhs-false
    respectively; each part is routed to the matching branch of [b].
    This is how [B := (X == 0)] records X's refinement in both branches
    (the paper's Sect. 6.2.4 example). *)
val assign_bool_split :
  t ->
  Astree_frontend.Tast.var ->
  ((int * bool) list -> leaf -> leaf * leaf) ->
  t

(** Per-leaf assignment of a pack numerical variable. *)
val assign_num :
  t ->
  Astree_frontend.Tast.var ->
  ((int * bool) list -> leaf -> Itv.t) ->
  t

(** Per-leaf refinement under a numerical condition. *)
val guard_num : t -> ((int * bool) list -> leaf -> leaf) -> t

val forget_num : t -> Astree_frontend.Tast.var -> t
val forget_bool : t -> Astree_frontend.Tast.var -> t

(** {1 Queries} *)

(** Overall interval of a pack numerical variable (join over live
    leaves); [None] when unknown in some leaf or not in the pack. *)
val get_num : t -> Astree_frontend.Tast.var -> Itv.t option

(** Possible truth values of a pack boolean:
    [(can_be_false, can_be_true)]. *)
val get_bool : t -> Astree_frontend.Tast.var -> bool * bool

(** Tree size in nodes (leaves included). *)
val size : t -> int

(** Live branching nodes, for the invariant census (Sect. 9.4.1). *)
val count_assertions : t -> int

val pp : Format.formatter -> t -> unit
