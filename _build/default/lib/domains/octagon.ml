(** The octagon abstract domain (Sect. 6.2.2), after Miné [28, 29, 30].

    An octagon over a pack of variables v_0 .. v_{n-1} represents
    conjunctions of constraints (+-x +-y <= c).  The implementation uses
    the difference-bound-matrix encoding: index 2k stands for +v_k and
    2k+1 for -v_k, and entry m[i][j] bounds V_j - V_i.  Strong closure is
    cubic in time and the matrix quadratic in space, as the paper states.

    Per the paper's design, the domain works in the real field: bounds
    are binary64 with upward rounding, and floating-point program
    expressions only reach it through the sound linear forms of
    Sect. 6.3, which carry their own rounding errors.  This is the
    paper's "generic way of implementing relational abstract domains on
    floating-point numbers". *)

module F = Astree_frontend

type t = {
  pack : F.Tast.var array;    (** the variables of this pack, in order *)
  mutable bot : bool;
  m : float array array;      (** 2n x 2n bound matrix; +infinity = top *)
}

let dim oct = 2 * Array.length oct.pack

let bar i = i lxor 1

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let top (pack : F.Tast.var array) : t =
  let n2 = 2 * Array.length pack in
  let m =
    Array.init n2 (fun i ->
        Array.init n2 (fun j -> if i = j then 0.0 else Float.infinity))
  in
  { pack; bot = false; m }

let bottom (pack : F.Tast.var array) : t =
  let o = top pack in
  { o with bot = true }

let is_bot o = o.bot

let copy o = { o with m = Array.map Array.copy o.m }

let var_index (o : t) (v : F.Tast.var) : int option =
  let n = Array.length o.pack in
  let rec go k =
    if k >= n then None
    else if F.Tast.Var.equal o.pack.(k) v then Some k
    else go (k + 1)
  in
  go 0

let mem_var o v = var_index o v <> None

(* ------------------------------------------------------------------ *)
(* Strong closure                                                      *)
(* ------------------------------------------------------------------ *)

let add_up = Float_utils.add_up

(** Floyd–Warshall shortest paths followed by the octagonal
    strengthening step; detects emptiness on the diagonal.  All bound
    arithmetic rounds upward, which keeps the result a sound
    over-approximation. *)
let close (o : t) : unit =
  if not o.bot then begin
    let n2 = dim o in
    let m = o.m in
    (* Mine's strong closure: one Floyd-Warshall step through both
       polarities of each variable, followed by the octagonal
       strengthening step after EACH variable (interleaving is what
       makes the result strongly closed, hence idempotent) *)
    let n = n2 / 2 in
    for v = 0 to n - 1 do
      List.iter
        (fun k ->
          for i = 0 to n2 - 1 do
            let mik = m.(i).(k) in
            if mik < Float.infinity then
              for j = 0 to n2 - 1 do
                let via = add_up mik m.(k).(j) in
                if via < m.(i).(j) then m.(i).(j) <- via
              done
          done)
        [ 2 * v; (2 * v) + 1 ];
      (* strengthening:
         m[i][j] <- min(m[i][j], (m[i][bar i] + m[bar j][j]) / 2) *)
      for i = 0 to n2 - 1 do
        for j = 0 to n2 - 1 do
          let s = add_up m.(i).(bar i) m.(bar j).(j) /. 2.0 in
          let s = Float_utils.round_up s in
          if s < m.(i).(j) then m.(i).(j) <- s
        done
      done
    done;
    (* emptiness check *)
    let empty = ref false in
    for i = 0 to n2 - 1 do
      if m.(i).(i) < 0.0 then empty := true else m.(i).(i) <- 0.0
    done;
    if !empty then o.bot <- true
  end

(* ------------------------------------------------------------------ *)
(* Lattice operations (on closed arguments)                            *)
(* ------------------------------------------------------------------ *)

let join (a : t) (b : t) : t =
  if a.bot then copy b
  else if b.bot then copy a
  else begin
    let r = copy a in
    let n2 = dim a in
    for i = 0 to n2 - 1 do
      for j = 0 to n2 - 1 do
        r.m.(i).(j) <- Float.max a.m.(i).(j) b.m.(i).(j)
      done
    done;
    r
  end

let meet (a : t) (b : t) : t =
  if a.bot then copy a
  else if b.bot then copy b
  else begin
    let r = copy a in
    let n2 = dim a in
    for i = 0 to n2 - 1 do
      for j = 0 to n2 - 1 do
        r.m.(i).(j) <- Float.min a.m.(i).(j) b.m.(i).(j)
      done
    done;
    close r;
    r
  end

(** Widening: an unstable bound jumps straight to +infinity (the
    standard octagon widening of Mine [29]).  Since the transfer
    functions rebuild relational constraints at every assignment, a
    killed bound is re-derived on the next iterate if it is genuinely
    invariant; jumping through intermediate thresholds would instead let
    rounding-noise creep drag whole constraint families up the ladder.
    The [thresholds] parameter is kept for interface uniformity with the
    other domains.  The left argument must not be closed after widening
    is engaged, per the classical octagon widening soundness condition;
    we therefore never close widened results until the next meet. *)
let widen ~(thresholds : Thresholds.t) (a : t) (b : t) : t =
  ignore thresholds;
  if a.bot then copy b
  else if b.bot then copy a
  else begin
    let r = copy a in
    let n2 = dim a in
    for i = 0 to n2 - 1 do
      for j = 0 to n2 - 1 do
        if b.m.(i).(j) > a.m.(i).(j) then r.m.(i).(j) <- Float.infinity
      done
    done;
    r
  end

let narrow (a : t) (b : t) : t =
  if a.bot || b.bot then bottom a.pack
  else begin
    let r = copy a in
    let n2 = dim a in
    for i = 0 to n2 - 1 do
      for j = 0 to n2 - 1 do
        if a.m.(i).(j) = Float.infinity then r.m.(i).(j) <- b.m.(i).(j)
      done
    done;
    r
  end

let subset (a : t) (b : t) : bool =
  a.bot || (not b.bot)
           && (let n2 = dim a in
               let ok = ref true in
               for i = 0 to n2 - 1 do
                 for j = 0 to n2 - 1 do
                   if a.m.(i).(j) > b.m.(i).(j) then ok := false
                 done
               done;
               !ok)

let equal (a : t) (b : t) : bool =
  (a.bot && b.bot)
  || ((not a.bot) && (not b.bot) && a.m = b.m)

(* ------------------------------------------------------------------ *)
(* Interval extraction and injection                                   *)
(* ------------------------------------------------------------------ *)

(** Hull of variable k: [-m[2k][2k+1]/2, m[2k+1][2k]/2]. *)
let get_bounds (o : t) (v : F.Tast.var) : (float * float) option =
  if o.bot then Some (1.0, -1.0)
  else
    match var_index o v with
    | None -> None
    | Some k ->
        let hi = Float_utils.round_up (o.m.(bar (2 * k)).(2 * k) /. 2.0) in
        let lo =
          Float_utils.round_down (-.(o.m.(2 * k).(bar (2 * k)) /. 2.0))
        in
        Some (lo, hi)

(** Constrain v to [lo, hi] (meet). *)
let set_bounds (o : t) (v : F.Tast.var) ((lo, hi) : float * float) : unit =
  if not o.bot then
    match var_index o v with
    | None -> ()
    | Some k ->
        let i = 2 * k in
        if hi < Float.infinity then
          o.m.(bar i).(i) <- Float.min o.m.(bar i).(i)
                               (Float_utils.mul_up 2.0 hi);
        if lo > Float.neg_infinity then
          o.m.(i).(bar i) <- Float.min o.m.(i).(bar i)
                               (Float_utils.mul_up (-2.0) lo)

(** Bounds on the difference x - y, when both are in the pack. *)
let get_diff_bounds (o : t) (x : F.Tast.var) (y : F.Tast.var) :
    (float * float) option =
  if o.bot then None
  else
    match (var_index o x, var_index o y) with
    | Some kx, Some ky when kx <> ky ->
        (* x - y <= m[2ky][2kx]; y - x <= m[2kx][2ky] *)
        let hi = o.m.(2 * ky).(2 * kx) in
        let lo = -.o.m.(2 * kx).(2 * ky) in
        if lo > Float.neg_infinity || hi < Float.infinity then Some (lo, hi)
        else None
    | _ -> None

(** Remove every constraint involving v (projection). *)
let forget (o : t) (v : F.Tast.var) : unit =
  if not o.bot then
    match var_index o v with
    | None -> ()
    | Some k ->
        let n2 = dim o in
        let i0 = 2 * k and i1 = (2 * k) + 1 in
        for j = 0 to n2 - 1 do
          if j <> i0 then begin
            o.m.(i0).(j) <- Float.infinity;
            o.m.(j).(i0) <- Float.infinity
          end;
          if j <> i1 then begin
            o.m.(i1).(j) <- Float.infinity;
            o.m.(j).(i1) <- Float.infinity
          end
        done;
        o.m.(i0).(i0) <- 0.0;
        o.m.(i1).(i1) <- 0.0

(* Add constraint V_j - V_i <= c, maintaining coherence. *)
let add_constraint (o : t) i j c =
  if c < o.m.(i).(j) then begin
    o.m.(i).(j) <- c;
    o.m.(bar j).(bar i) <- Float.min o.m.(bar j).(bar i) c
  end

(** Constrain x - y <= c  (x, y in the pack). *)
let add_diff_le (o : t) (x : F.Tast.var) (y : F.Tast.var) (c : float) : unit =
  if not o.bot then
    match (var_index o x, var_index o y) with
    | Some kx, Some ky when kx <> ky ->
        (* x - y = V_{2kx} - V_{2ky} <= c *)
        add_constraint o (2 * ky) (2 * kx) c
    | _ -> ()

(** Constrain x + y <= c. *)
let add_sum_le (o : t) (x : F.Tast.var) (y : F.Tast.var) (c : float) : unit =
  if not o.bot then
    match (var_index o x, var_index o y) with
    | Some kx, Some ky when kx <> ky ->
        (* x + y = V_{2kx} - V_{2ky+1} <= c *)
        add_constraint o ((2 * ky) + 1) (2 * kx) c
    | _ -> ()

(** Constrain -x - y <= c. *)
let add_neg_sum_le (o : t) (x : F.Tast.var) (y : F.Tast.var) (c : float) : unit
    =
  if not o.bot then
    match (var_index o x, var_index o y) with
    | Some kx, Some ky when kx <> ky ->
        (* -x - y = V_{2kx+1} - V_{2ky} <= c *)
        add_constraint o (2 * ky) ((2 * kx) + 1) c
    | _ -> ()

(* ------------------------------------------------------------------ *)
(* Transfer functions                                                  *)
(* ------------------------------------------------------------------ *)

(* An oracle gives float hulls for variables outside the pack. *)
type oracle = F.Tast.var -> float * float

let eval_form (o : t) (oracle : oracle) (form : Linear_form.t) : float * float =
  let var_hull v =
    match get_bounds o v with
    | Some (lo, hi) -> (
        (* the octagon's own bounds may be tighter than the oracle's *)
        let olo, ohi = oracle v in
        (Float.max lo olo, Float.min hi ohi))
    | None -> oracle v
  in
  Linear_form.eval var_hull form

(** Abstract assignment [x := form].  The transfer function is the
    paper's "smart" one: for every unit-coefficient variable y of the
    form, the rest of the form is evaluated to an interval [c, d] and the
    relational constraints c <= x -+ y <= d are synthesized; other
    variables only contribute their interval.  This is what proves
    L <= X in the paper's rate-limiter example. *)
(* Exact self-update x := x + [c, d]: every constraint involving x
   shifts by the increment, preserving all relational information
   (what keeps loop counters related to their accumulators). *)
let shift_var (o : t) (k : int) (c : float) (d : float) : unit =
  let n2 = dim o in
  let i0 = 2 * k and i1 = (2 * k) + 1 in
  let su = Float_utils.sub_up and au = Float_utils.add_up in
  for j = 0 to n2 - 1 do
    if j <> i0 && j <> i1 then begin
      (* V_j - x <= m[i0][j]  becomes  <= m - c *)
      o.m.(i0).(j) <- su o.m.(i0).(j) c;
      (* x - V_j <= m[j][i0]  becomes  <= m + d *)
      o.m.(j).(i0) <- au o.m.(j).(i0) d;
      (* V_j + x <= m[i1][j]  becomes  <= m + d *)
      o.m.(i1).(j) <- au o.m.(i1).(j) d;
      (* -x - V_j <= m[j][i1]  becomes  <= m - c *)
      o.m.(j).(i1) <- su o.m.(j).(i1) c
    end
  done;
  (* unary bounds: -2x <= m[i0][i1] becomes <= m - 2c; 2x <= m[i1][i0]
     becomes <= m + 2d *)
  o.m.(i0).(i1) <- su o.m.(i0).(i1) (Float_utils.mul_down 2.0 c);
  o.m.(i1).(i0) <- au o.m.(i1).(i0) (Float_utils.mul_up 2.0 d)

let assign (o : t) (oracle : oracle) (x : F.Tast.var) (form : Linear_form.t) :
    unit =
  if not o.bot then begin
    match var_index o x with
    | None -> ()
    | Some kx
      when (match Linear_form.as_single_var form with
           | Some (y, k, _) ->
               F.Tast.Var.equal y x
               && k.Linear_form.lo = 1.0 && k.Linear_form.hi = 1.0
           | None -> false) ->
        (* x := x + [c, d] *)
        let c, d =
          match Linear_form.as_single_var form with
          | Some (_, _, cst) -> (cst.Linear_form.lo, cst.Linear_form.hi)
          | None -> (0.0, 0.0)
        in
        shift_var o kx c d;
        close o
    | Some _ ->
        (* value hull computed before forgetting x (x may occur in form) *)
        let vlo, vhi = eval_form o oracle form in
        (* detect x := x + [c,d] - like self-updates: substitute via a
           temporary approach: compute relational info w.r.t. other vars
           from the pre-state *)
        let unit_terms =
          Linear_form.vars form
          |> List.filter_map (fun y ->
                 if F.Tast.Var.equal y x then None
                 else if not (mem_var o y) then None
                 else
                   let coeffs =
                     Linear_form.(
                       match VarMap.find_opt y form.terms with
                       | Some c -> c
                       | None -> coeff_zero)
                   in
                   if coeffs.Linear_form.lo = 1.0 && coeffs.Linear_form.hi = 1.0
                   then Some (y, `Plus)
                   else if
                     coeffs.Linear_form.lo = -1.0
                     && coeffs.Linear_form.hi = -1.0
                   then Some (y, `Minus)
                   else None)
        in
        (* rest intervals are computed in the pre-state *)
        let rests =
          List.map
            (fun (y, sign) ->
              let ly = Linear_form.of_var y in
              let rest =
                match sign with
                | `Plus -> Linear_form.sub form ly
                | `Minus -> Linear_form.add form ly
              in
              let c, d = eval_form o oracle rest in
              (y, sign, c, d))
            unit_terms
        in
        forget o x;
        set_bounds o x (vlo, vhi);
        List.iter
          (fun (y, sign, c, d) ->
            match sign with
            | `Plus ->
                (* x = y + rest, rest in [c,d]: c <= x - y <= d *)
                if d < Float.infinity then add_diff_le o x y d;
                if c > Float.neg_infinity then add_diff_le o y x (-.c)
            | `Minus ->
                (* x = -y + rest: c <= x + y <= d *)
                if d < Float.infinity then add_sum_le o x y d;
                if c > Float.neg_infinity then add_neg_sum_le o x y (-.c))
          rests;
        close o
  end

(** Abstract guard [form <= 0].  Octagonal constraints are extracted when
    the form involves one or two pack variables with unit coefficients;
    otherwise only interval information is used. *)
let guard_le_zero (o : t) (oracle : oracle) (form : Linear_form.t) : unit =
  if not o.bot then begin
    let in_pack = List.filter (mem_var o) (Linear_form.vars form) in
    let unit_coeff v =
      match Linear_form.VarMap.find_opt v form.Linear_form.terms with
      | Some c when c.Linear_form.lo = 1.0 && c.Linear_form.hi = 1.0 ->
          Some `Plus
      | Some c when c.Linear_form.lo = -1.0 && c.Linear_form.hi = -1.0 ->
          Some `Minus
      | _ -> None
    in
    (match in_pack with
    | [ x ] -> (
        match unit_coeff x with
        | Some sign ->
            let lx = Linear_form.of_var x in
            let rest =
              match sign with
              | `Plus -> Linear_form.sub form lx
              | `Minus -> Linear_form.add form lx
            in
            let c, d = eval_form o oracle rest in
            ignore c;
            (* +x + rest <= 0  ==>  x <= -rest_lo is wrong; x <= -c with
               c the lower bound of rest *)
            (match sign with
            | `Plus ->
                (* x <= -rest, so x <= -(lower bound of rest) *)
                let _, cur_hi =
                  Option.value (get_bounds o x)
                    ~default:(Float.neg_infinity, Float.infinity)
                in
                let new_hi = Float_utils.round_up (-.c) in
                if new_hi < cur_hi then
                  set_bounds o x (Float.neg_infinity, new_hi)
            | `Minus ->
                (* -x + rest <= 0: x >= rest_lo *)
                let new_lo = Float_utils.round_down c in
                if new_lo > Float.neg_infinity then
                  set_bounds o x (new_lo, Float.infinity));
            ignore d
        | None -> ())
    | [ x; y ] -> (
        match (unit_coeff x, unit_coeff y) with
        | Some sx, Some sy ->
            let form' =
              let lx = Linear_form.of_var x and ly = Linear_form.of_var y in
              let f = form in
              let f =
                match sx with
                | `Plus -> Linear_form.sub f lx
                | `Minus -> Linear_form.add f lx
              in
              match sy with
              | `Plus -> Linear_form.sub f ly
              | `Minus -> Linear_form.add f ly
            in
            let c, _d = eval_form o oracle form' in
            (* sx.x + sy.y + rest <= 0 ==> sx.x + sy.y <= -c *)
            let bound = Float_utils.round_up (-.c) in
            if bound < Float.infinity then begin
              match (sx, sy) with
              | `Plus, `Plus -> add_sum_le o x y bound
              | `Plus, `Minus -> add_diff_le o x y bound
              | `Minus, `Plus -> add_diff_le o y x bound
              | `Minus, `Minus -> add_neg_sum_le o x y bound
            end
        | _ -> ())
    | _ -> ());
    close o
  end

(* ------------------------------------------------------------------ *)
(* Pretty-printing and accounting                                      *)
(* ------------------------------------------------------------------ *)

(** Number of non-trivial (finite, off-diagonal) constraints, split into
    (sum constraints, difference constraints) — matching the paper's
    invariant census of additive vs subtractive octagonal assertions
    (Sect. 9.4.1). *)
let count_constraints (o : t) : int * int =
  if o.bot then (0, 0)
  else begin
    let n2 = dim o in
    let sums = ref 0 and diffs = ref 0 in
    for i = 0 to n2 - 1 do
      for j = 0 to n2 - 1 do
        if i <> j && i / 2 <> j / 2 && o.m.(i).(j) < Float.infinity then
          (* V_j - V_i <= c: a difference if both have the same parity
             polarity, a sum otherwise *)
          if i land 1 = j land 1 then incr sums else incr diffs
      done
    done;
    (!sums / 2, !diffs / 2)
    (* each constraint is stored twice by coherence *)
  end

(** True when the octagon carries at least one relational constraint
    (used by the packing-usefulness optimization, Sect. 7.2.2). *)
let has_relational_info (o : t) : bool =
  (not o.bot)
  &&
  let n2 = dim o in
  let found = ref false in
  for i = 0 to n2 - 1 do
    for j = 0 to n2 - 1 do
      if i / 2 <> j / 2 && o.m.(i).(j) < Float.infinity then found := true
    done
  done;
  !found

let pp ppf (o : t) =
  if o.bot then Fmt.string ppf "_|_"
  else begin
    let n = Array.length o.pack in
    let first = ref true in
    for k = 0 to n - 1 do
      match get_bounds o o.pack.(k) with
      | Some (lo, hi) when lo > Float.neg_infinity || hi < Float.infinity ->
          if not !first then Fmt.string ppf ", ";
          first := false;
          Fmt.pf ppf "%s in [%g, %g]" o.pack.(k).F.Tast.v_name lo hi
      | _ -> ()
    done;
    for i = 0 to (2 * n) - 1 do
      for j = 0 to (2 * n) - 1 do
        if i / 2 < j / 2 && o.m.(i).(j) < Float.infinity then begin
          if not !first then Fmt.string ppf ", ";
          first := false;
          let vi = o.pack.(i / 2).F.Tast.v_name
          and vj = o.pack.(j / 2).F.Tast.v_name in
          let si = if i land 1 = 0 then "-" else "+" in
          let sj = if j land 1 = 0 then "+" else "-" in
          Fmt.pf ppf "%s%s %s%s <= %g" sj vj si vi o.m.(i).(j)
        end
      done
    done;
    if !first then Fmt.string ppf "T"
  end
