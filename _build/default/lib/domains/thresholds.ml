(** Widening threshold sets (Sect. 7.1.2).

    A threshold set is a finite, sorted set of numbers containing -oo and
    +oo.  The default construction is the paper's geometric ramp
    (+-alpha.lambda^k) for 0 <= k <= N, which bounds any stable affine
    recurrence X := alpha_i X + beta_i (0 <= alpha_i < 1) as soon as the
    ramp reaches the minimal admissible bound M. *)

type t = float array  (** sorted ascending; first = -oo, last = +oo *)

(** [geometric ~alpha ~lambda ~n] builds the paper's default set
    (+-alpha.lambda^k) for k in [0, n], plus 0 and the infinities. *)
let geometric ?(alpha = 1.0) ?(lambda = 10.0) ?(n = 40) () : t =
  let pos = List.init (n + 1) (fun k -> alpha *. (lambda ** float_of_int k)) in
  (* the largest finite values of each float kind are always included:
     parking a widened bound exactly at the type's range avoids spurious
     overflow alarms at contracting operations (Sect. 7.1.2: "alpha
     lambda^N should be large enough; otherwise, many false alarms for
     overflow are produced") *)
  let pos =
    Astree_frontend.Ctypes.fmax Astree_frontend.Ctypes.Fsingle
    :: Astree_frontend.Ctypes.fmax Astree_frontend.Ctypes.Fdouble
    :: pos
  in
  let neg = List.map Float.neg pos in
  let all =
    (Float.neg_infinity :: Float.infinity :: 0.0 :: pos) @ neg
    |> List.sort_uniq Float.compare
  in
  Array.of_list all

(** A threshold set from explicit user-supplied values (the simpler
    parametrization "easily found in the program documentation",
    Sect. 10); infinities and 0 are added. *)
let of_list (vals : float list) : t =
  (Float.neg_infinity :: Float.infinity :: 0.0 :: vals)
  @ List.map Float.neg vals
  |> List.sort_uniq Float.compare
  |> Array.of_list

(** The degenerate set {-oo, +oo}: widening jumps straight to infinity,
    i.e. the classical interval widening of [10, Sect. 2.1.2]. *)
let none : t = [| Float.neg_infinity; Float.infinity |]

let default : t = geometric ()

let size (t : t) = Array.length t

(** Smallest threshold >= v (defined because +oo is present). *)
let above (t : t) (v : float) : float =
  let n = Array.length t in
  let rec go i = if i >= n then Float.infinity
    else if t.(i) >= v then t.(i) else go (i + 1)
  in
  go 0

(** Largest threshold <= v. *)
let below (t : t) (v : float) : float =
  let n = Array.length t in
  let rec go i = if i < 0 then Float.neg_infinity
    else if t.(i) <= v then t.(i) else go (i - 1)
  in
  go (n - 1)

let pp ppf (t : t) =
  Fmt.pf ppf "{%a}" Fmt.(array ~sep:comma float) t
