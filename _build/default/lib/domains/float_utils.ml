(** Directed-rounding helpers for sound floating-point interval arithmetic
    (Sect. 6.2.1: "special care has to be taken in the case of
    floating-point values and operations to always perform rounding in the
    right direction").

    OCaml computes in IEEE-754 binary64 round-to-nearest.  A result rounded
    to nearest differs from the exact real by at most half an ulp, so
    stepping one ulp outward ([fsucc] on upper bounds, [fpred] on lower
    bounds) yields a correct directed-rounding over-approximation. *)

(** Next representable double above [x] ([+infinity] is a fixpoint). *)
let fsucc (x : float) : float =
  if Float.is_nan x then x
  else if x = Float.infinity then x
  else if x = 0.0 then Float.min_float *. epsilon_float (* smallest denormal *)
  else
    let bits = Int64.bits_of_float x in
    if x > 0.0 then Int64.float_of_bits (Int64.add bits 1L)
    else Int64.float_of_bits (Int64.sub bits 1L)

(** Next representable double below [x] ([-infinity] is a fixpoint). *)
let fpred (x : float) : float = -.fsucc (-.x)

(** Round a bound computed in round-to-nearest upward (sound upper bound,
    conservative by one ulp). *)
let round_up (x : float) : float = if Float.is_nan x then x else fsucc x

(** Round a bound computed in round-to-nearest downward. *)
let round_down (x : float) : float = if Float.is_nan x then x else fpred x

(* Error-compensated directed rounding: the rounded result is adjusted by
   one ulp only when the residual error (computed exactly by Knuth's
   TwoSum, resp. an FMA) shows the exact result lies strictly beyond it.
   This keeps exact operations (integer-valued coefficients, x + 0, ...)
   exact, which matters both for precision and for the unit-coefficient
   detection of the octagon transfer functions. *)

(* Overflowed finite results: for an upward rounding, -inf from finite
   operands may be replaced by -max_float (the exact result is >= the
   most negative finite double's neighborhood); dually for downward. *)
let finite2 a b = Float.abs a < Float.infinity && Float.abs b < Float.infinity

let add_up a b =
  let r = a +. b in
  if Float.is_nan r then r
  else if r = Float.infinity then r
  else if r = Float.neg_infinity then
    if finite2 a b then -.max_float else r
  else
    let e = (a -. (r -. b)) +. (b -. (r -. a)) in
    if Float.is_nan e then fsucc r else if e > 0.0 then fsucc r else r

let add_down a b =
  let r = a +. b in
  if Float.is_nan r then r
  else if r = Float.neg_infinity then r
  else if r = Float.infinity then if finite2 a b then max_float else r
  else
    let e = (a -. (r -. b)) +. (b -. (r -. a)) in
    if Float.is_nan e then fpred r else if e < 0.0 then fpred r else r

let sub_up a b = add_up a (-.b)
let sub_down a b = add_down a (-.b)

(* inf * 0 = nan in IEEE; in exact interval arithmetic the product of a
   zero bound with an infinite bound is 0 *)
let mul_zero_aware a b = if a = 0.0 || b = 0.0 then 0.0 else a *. b

let mul_up a b =
  if a = 0.0 || b = 0.0 then 0.0
  else
  let r = mul_zero_aware a b in
  if Float.is_nan r then r
  else if r = Float.infinity then r
  else if r = Float.neg_infinity then
    if finite2 a b then -.max_float else r
  else
    let e = Float.fma a b (-.r) in
    if Float.is_nan e then fsucc r else if e > 0.0 then fsucc r else r

let mul_down a b =
  if a = 0.0 || b = 0.0 then 0.0
  else
  let r = mul_zero_aware a b in
  if Float.is_nan r then r
  else if r = Float.neg_infinity then r
  else if r = Float.infinity then if finite2 a b then max_float else r
  else
    let e = Float.fma a b (-.r) in
    if Float.is_nan e then fpred r else if e < 0.0 then fpred r else r

(* For division, the exact quotient exceeds r iff (a - r*b)/b > 0; the
   residual a - r*b is computed exactly with an FMA. *)
let div_up a b =
  if a = 0.0 && b <> 0.0 then 0.0
  else
    let r = a /. b in
    if Float.is_nan r then r
    else if r = Float.infinity then r
    else if r = Float.neg_infinity then
      if finite2 a b then -.max_float else r
    else
      let e = Float.fma r b (-.a) in
      (* exact - r = -e / b *)
      if Float.is_nan e then fsucc r
      else if (e < 0.0 && b > 0.0) || (e > 0.0 && b < 0.0) then fsucc r
      else r

let div_down a b =
  if a = 0.0 && b <> 0.0 then 0.0
  else
    let r = a /. b in
    if Float.is_nan r then r
    else if r = Float.neg_infinity then r
    else if r = Float.infinity then if finite2 a b then max_float else r
    else
      let e = Float.fma r b (-.a) in
      if Float.is_nan e then fpred r
      else if (e > 0.0 && b > 0.0) || (e < 0.0 && b < 0.0) then fpred r
      else r

let sqrt_up a =
  let r = sqrt a in
  if Float.is_nan r || r = Float.infinity then r
  else
    let e = Float.fma r r (-.a) in
    (* exact sqrt > r iff a > r^2 iff e < 0 *)
    if Float.is_nan e then fsucc r else if e < 0.0 then fsucc r else r

let sqrt_down a =
  let r = sqrt a in
  if Float.is_nan r then r
  else
    let e = Float.fma r r (-.a) in
    let r = if Float.is_nan e then fpred r else if e > 0.0 then fpred r else r in
    if r < 0.0 then 0.0 else r

(** Round a double to binary32 (round-to-nearest). *)
let to_single (x : float) : float = Int32.float_of_bits (Int32.bits_of_float x)

(** Next binary32 value above a binary32 [x]. *)
let fsucc32 (x : float) : float =
  let r = to_single x in
  if Float.is_nan r || r = Float.infinity then r
  else if r = 0.0 then Int32.float_of_bits 1l (* smallest denormal32 *)
  else
    let bits = Int32.bits_of_float r in
    if r > 0.0 then Int32.float_of_bits (Int32.add bits 1l)
    else Int32.float_of_bits (Int32.sub bits 1l)

let fpred32 (x : float) : float = -.fsucc32 (-.x)

(** Sound binary32 bracketing of a double: the returned pair [(lo, hi)] of
    binary32 values satisfies [lo <= x <= hi]. *)
let single_bounds (x : float) : float * float =
  let r = to_single x in
  if Float.is_nan r then (Float.neg_infinity, Float.infinity)
  else if r < x then (r, fsucc32 r)
  else if r > x then (fpred32 r, r)
  else (r, r)

(** Greatest relative error of a float w.r.t. a real for a given kind —
    the constant [f] of Sect. 6.2.3. *)
let rel_err = Astree_frontend.Ctypes.frel_err

(** Absolute error floor (smallest denormal). *)
let abs_err = Astree_frontend.Ctypes.fabs_err

(** Largest finite value of a kind. *)
let fmax = Astree_frontend.Ctypes.fmax

(** Unit in the last place of [x] (double). *)
let ulp (x : float) : float =
  if Float.is_nan x || Float.abs x = Float.infinity then Float.nan
  else fsucc (Float.abs x) -. Float.abs x

(** Saturating native-int helpers for integer interval bounds.
    [min_int]/[max_int] act as -oo/+oo. *)
module Sat = struct
  let neg_inf = min_int
  let pos_inf = max_int

  let is_inf x = x = neg_inf || x = pos_inf

  let neg x = if x = neg_inf then pos_inf else if x = pos_inf then neg_inf else -x

  let add x y =
    if x = neg_inf || y = neg_inf then
      if x = pos_inf || y = pos_inf then invalid_arg "Sat.add: oo + -oo"
      else neg_inf
    else if x = pos_inf || y = pos_inf then pos_inf
    else
      let r = x + y in
      (* overflow detection: same-sign operands, result sign flips *)
      if x > 0 && y > 0 && r < 0 then pos_inf
      else if x < 0 && y < 0 && r >= 0 then neg_inf
      else r

  let sub x y = add x (neg y)

  let mul x y =
    if x = 0 || y = 0 then 0
    else if is_inf x || is_inf y then if (x > 0) = (y > 0) then pos_inf else neg_inf
    else
      let r = x * y in
      if x <> 0 && (r / x <> y || (x = -1 && y = min_int)) then
        if (x > 0) = (y > 0) then pos_inf else neg_inf
      else r

  (* truncated division on possibly-infinite bounds; caller excludes 0 *)
  let div x y =
    if y = 0 then invalid_arg "Sat.div by zero"
    else if is_inf x then if (x > 0) = (y > 0) then pos_inf else neg_inf
    else if is_inf y then 0
    else x / y
end
