(** Interval linear forms (Sect. 6.3):
    [l = Sum_i [a_i, b_i] . v_i + [a, b]] over program variables, with
    interval coefficients.  All coefficient arithmetic is interval
    arithmetic with outward rounding, so a linear form always
    over-approximates the real-field value of the expression it stands
    for. *)

module VarMap = Astree_frontend.Tast.VarMap

(** An interval constant. *)
type coeff = { lo : float; hi : float }

type t = {
  terms : coeff VarMap.t;  (** variable coefficients; absent = 0 *)
  const : coeff;           (** the constant interval term *)
}

(** {1 Coefficients} *)

val coeff_const : float -> coeff
val coeff_zero : coeff
val coeff_is_zero : coeff -> bool
val coeff_of_itv : Itv.t -> coeff option
val coeff_add : coeff -> coeff -> coeff
val coeff_neg : coeff -> coeff
val coeff_sub : coeff -> coeff -> coeff
val coeff_mul : coeff -> coeff -> coeff

(** Division by an interval not containing zero; [None] otherwise. *)
val coeff_div : coeff -> coeff -> coeff option

val coeff_abs_max : coeff -> float
val pp_coeff : Format.formatter -> coeff -> unit

(** {1 Construction} *)

val const : coeff -> t
val zero : t
val of_var : Astree_frontend.Tast.var -> t
val of_interval : float -> float -> t

(** {1 Linear operations} *)

val add : t -> t -> t
val neg : t -> t
val sub : t -> t -> t

(** Multiplication by a constant interval. *)
val scale : coeff -> t -> t

(** Division by a constant interval not containing 0. *)
val div_const : t -> coeff -> t option

(** {1 Views} *)

(** The constant view, when the form has no variable term. *)
val is_const : t -> coeff option

(** The single-variable view [(v, k, c)] for [k.v + c]. *)
val as_single_var : t -> (Astree_frontend.Tast.var * coeff * coeff) option

(** The two-variable view, for octagon transfer functions. *)
val as_two_vars :
  t ->
  (Astree_frontend.Tast.var * coeff * Astree_frontend.Tast.var * coeff * coeff)
  option

val vars : t -> Astree_frontend.Tast.var list

(** {1 Evaluation} *)

(** Evaluate to float bounds under a variable-range oracle, with outward
    rounding. *)
val eval : (Astree_frontend.Tast.var -> float * float) -> t -> float * float

val eval_coeff : (Astree_frontend.Tast.var -> float * float) -> t -> coeff

(** Magnitude bound of the form under an oracle. *)
val magnitude : (Astree_frontend.Tast.var -> float * float) -> t -> float

(** {1 Rounding errors (Sect. 6.3)} *)

(** Absorb the absolute rounding error of one IEEE operation of the
    given kind, at the given result-magnitude bound, into the constant
    term. *)
val add_rounding_error : Astree_frontend.Ctypes.fkind -> float -> t -> t

val pp : Format.formatter -> t -> unit
