(** The ellipsoid abstract domain epsilon(a,b) (Sect. 6.2.3), for
    second-order digital filters

      if (B) { Y := i; X := j; }
      else   { X' := aX - bY + t; Y := X; X := X'; }

    With 0 < b < 1 and a^2 - 4b < 0, the constraint X^2 - aXY + bY^2 <= k
    is preserved by the affine transformation (Prop. 1), provided
    k >= (tM / (1 - sqrt b))^2 where |t| <= tM.

    An abstract element maps ordered variable pairs (X, Y) to a float k
    such that X^2 - aXY + bY^2 <= k; +infinity means no constraint.  All
    computations round upward, and the delta function inflates the
    propagated bound by the relative float error f, exactly as in the
    paper. *)

module F = Astree_frontend

module PairMap = Map.Make (struct
  type t = int * int (* variable ids *)

  let compare (a1, b1) (a2, b2) =
    let c = Int.compare a1 a2 in
    if c <> 0 then c else Int.compare b1 b2
end)

type t = {
  a : float;               (** filter coefficient a *)
  b : float;               (** filter coefficient b, 0 < b < 1 *)
  fkind : F.Ctypes.fkind;  (** float kind of the filter state variables *)
  vars : F.Tast.var array; (** the variables of this pack *)
  k : float PairMap.t;     (** constraints; absent or +inf = none *)
}

(** Do (a, b) satisfy the conditions of Prop. 1? *)
let valid_coeffs ~a ~b = b > 0.0 && b < 1.0 && (a *. a) -. (4.0 *. b) < 0.0

let make ~a ~b ~fkind (vars : F.Tast.var array) : t =
  if not (valid_coeffs ~a ~b) then
    invalid_arg "Ellipsoid.make: coefficients violate Prop. 1";
  { a; b; fkind; vars; k = PairMap.empty }

let mem_var (e : t) (v : F.Tast.var) : bool =
  Array.exists (fun w -> F.Tast.Var.equal v w) e.vars

let find (e : t) (x : F.Tast.var) (y : F.Tast.var) : float =
  match PairMap.find_opt (x.F.Tast.v_id, y.F.Tast.v_id) e.k with
  | Some k -> k
  | None -> Float.infinity

let set (e : t) (x : F.Tast.var) (y : F.Tast.var) (k : float) : t =
  if k = Float.infinity then
    { e with k = PairMap.remove (x.F.Tast.v_id, y.F.Tast.v_id) e.k }
  else { e with k = PairMap.add (x.F.Tast.v_id, y.F.Tast.v_id) k e.k }

(** Remove every constraint mentioning [x] (assignments of unknown shape,
    case 3 of the paper, and initialization). *)
let forget (e : t) (x : F.Tast.var) : t =
  {
    e with
    k =
      PairMap.filter
        (fun (i, j) _ -> i <> x.F.Tast.v_id && j <> x.F.Tast.v_id)
        e.k;
  }

(* ------------------------------------------------------------------ *)
(* The delta function                                                  *)
(* ------------------------------------------------------------------ *)

let up = Float_utils.round_up

(** delta(k) = ((sqrt b + 4f(|a| sqrt b + b)/sqrt(4b - a^2)) sqrt k
                + (1+f) tM)^2

    where f is the greatest relative error of a float w.r.t. a real
    (Sect. 6.2.3).  In exact arithmetic the propagated bound would be
    (sqrt(b k) + tM)^2; the extra terms absorb the rounding of the three
    floating-point operations in X' := aX - bY + t. *)
let delta (e : t) ~(t_max : float) (k : float) : float =
  if k = Float.infinity then Float.infinity
  else
    let f = Float_utils.rel_err e.fkind in
    let sqrt_b = up (sqrt e.b) in
    let disc = up (sqrt ((4.0 *. e.b) -. (e.a *. e.a))) in
    let infl =
      up (4.0 *. f *. up ((Float.abs e.a *. sqrt_b) +. e.b) /. disc)
    in
    let factor = up (sqrt_b +. infl) in
    let root = up (factor *. up (sqrt k)) in
    let shifted = up (root +. up ((1.0 +. f) *. t_max)) in
    up (shifted *. shifted)

(** The minimal self-stable bound (tM / (1 - sqrt b))^2 of Prop. 1. *)
let stable_bound (e : t) ~(t_max : float) : float =
  let sqrt_b = up (sqrt e.b) in
  let d = 1.0 -. sqrt_b in
  if d <= 0.0 then Float.infinity
  else
    let q = up (t_max /. d) in
    up (q *. q)

(* ------------------------------------------------------------------ *)
(* Transfer functions                                                  *)
(* ------------------------------------------------------------------ *)

(** Case 1 of the paper: [x := y] — each constraint containing y yields
    one for x (r'(U,V) = r(sigma U, sigma V)). *)
let assign_copy (e : t) (x : F.Tast.var) (y : F.Tast.var) : t =
  let e' = forget e x in
  let subst (v : int) = if v = x.F.Tast.v_id then y.F.Tast.v_id else v in
  (* for each pair (U,V) with U or V = x, take r(sigma U, sigma V) *)
  let result = ref e' in
  Array.iter
    (fun (v : F.Tast.var) ->
      if not (F.Tast.Var.equal v x) then begin
        (* pair (x, v) *)
        let kxv =
          match
            PairMap.find_opt (subst x.F.Tast.v_id, subst v.F.Tast.v_id) e.k
          with
          | Some k -> k
          | None -> Float.infinity
        in
        if kxv < Float.infinity then result := set !result x v kxv;
        let kvx =
          match
            PairMap.find_opt (subst v.F.Tast.v_id, subst x.F.Tast.v_id) e.k
          with
          | Some k -> k
          | None -> Float.infinity
        in
        if kvx < Float.infinity then result := set !result v x kvx
      end)
    e.vars;
  (* the pair (x, x): r(y, y) *)
  (match PairMap.find_opt (y.F.Tast.v_id, y.F.Tast.v_id) e.k with
  | Some k -> result := set !result x x k
  | None -> ());
  !result

(** Case 2: [x := a y - b z + t] with |t| <= t_max — the filter update.
    Constraints containing x are removed, then (x, y) |-> delta(r(y, z)). *)
let assign_filter (e : t) (x : F.Tast.var) (y : F.Tast.var) (z : F.Tast.var)
    ~(t_max : float) : t =
  let kyz = find e y z in
  let e' = forget e x in
  let k' = delta e ~t_max kyz in
  if k' < Float.infinity then set e' x y k' else e'

(** Case 3: assignment of any other shape. *)
let assign_other (e : t) (x : F.Tast.var) : t = forget e x

(* Guards are ignored (r' = r), per the paper. *)

(* ------------------------------------------------------------------ *)
(* Lattice operations                                                  *)
(* ------------------------------------------------------------------ *)

(* Union, intersection, widening and narrowing are computed
   component-wise.  Missing entries are +infinity. *)

let join (e1 : t) (e2 : t) : t =
  {
    e1 with
    k =
      PairMap.merge
        (fun _ k1 k2 ->
          match (k1, k2) with
          | Some k1, Some k2 -> Some (Float.max k1 k2)
          | _ -> None (* one side unconstrained: the union is too *))
        e1.k e2.k;
  }

let meet (e1 : t) (e2 : t) : t =
  {
    e1 with
    k =
      PairMap.merge
        (fun _ k1 k2 ->
          match (k1, k2) with
          | Some k1, Some k2 -> Some (Float.min k1 k2)
          | Some k, None | None, Some k -> Some k
          | None, None -> None)
        e1.k e2.k;
  }

(** Widening with thresholds on the ellipsoid radii (Sect. 6.2.3: "the
    widening uses thresholds as described in Sect. 7.1.2"). *)
let widen ~(thresholds : Thresholds.t) (e1 : t) (e2 : t) : t =
  {
    e1 with
    k =
      PairMap.merge
        (fun _ k1 k2 ->
          match (k1, k2) with
          | Some k1, Some k2 ->
              if k2 > k1 then
                let t = Thresholds.above thresholds k2 in
                if t = Float.infinity then None else Some t
              else Some k1
          | _ -> None)
        e1.k e2.k;
  }

let narrow (e1 : t) (e2 : t) : t =
  {
    e1 with
    k =
      PairMap.merge
        (fun _ k1 k2 ->
          match (k1, k2) with
          | Some k1, Some _ -> Some k1
          | None, Some k2 -> Some k2 (* refine missing constraints *)
          | Some k1, None -> Some k1
          | None, None -> None)
        e1.k e2.k;
  }

let subset (e1 : t) (e2 : t) : bool =
  PairMap.for_all (fun pair k2 ->
      match PairMap.find_opt pair e1.k with
      | Some k1 -> k1 <= k2
      | None -> false)
    e2.k

let equal (e1 : t) (e2 : t) : bool = PairMap.equal Float.equal e1.k e2.k

let is_top (e : t) : bool = PairMap.is_empty e.k

(* ------------------------------------------------------------------ *)
(* Reduction with the interval domain                                  *)
(* ------------------------------------------------------------------ *)

type oracle = F.Tast.var -> float * float

(** Reduction step (paper): substitute r(X,Y) by the least upper bound of
    the evaluation of X^2 - aXY + bY^2 over the intervals of X and Y; if
    X = Y is known, use (1 - a + b) X^2 which is much more precise. *)
let reduce_from_intervals ?(equal_vars = fun _ _ -> false) (oracle : oracle)
    (e : t) (x : F.Tast.var) (y : F.Tast.var) : t =
  let cur = find e x y in
  let candidate =
    if equal_vars x y then begin
      let xlo, xhi = oracle x in
      if Float.abs xlo = Float.infinity || Float.abs xhi = Float.infinity then
        Float.infinity
      else
        let m = Float.max (Float.abs xlo) (Float.abs xhi) in
        up (up (1.0 -. e.a +. e.b) *. up (m *. m))
    end
    else begin
      let xlo, xhi = oracle x in
      let ylo, yhi = oracle y in
      if
        Float.abs xlo = Float.infinity
        || Float.abs xhi = Float.infinity
        || Float.abs ylo = Float.infinity
        || Float.abs yhi = Float.infinity
      then Float.infinity
      else
        let mx = Float.max (Float.abs xlo) (Float.abs xhi) in
        let my = Float.max (Float.abs ylo) (Float.abs yhi) in
        (* X^2 - aXY + bY^2 <= mx^2 + |a| mx my + b my^2 *)
        up
          (up (mx *. mx)
          +. up (Float.abs e.a *. up (mx *. my))
          +. up (e.b *. up (my *. my)))
    end
  in
  if candidate < cur then set e x y candidate else e

(** Bound extraction (paper): after X' := aX - bY + t, use
    |X'| <= 2 sqrt(b) sqrt(r'(X', X)) / sqrt(4b - a^2) to tighten the
    interval of X'. *)
let extract_bound (e : t) (x : F.Tast.var) (y : F.Tast.var) : float option =
  let k = find e x y in
  if k = Float.infinity || k < 0.0 then None
  else
    let disc = (4.0 *. e.b) -. (e.a *. e.a) in
    if disc <= 0.0 then None
    else
      let bound = up (2.0 *. up (sqrt e.b) *. up (sqrt k) /. Float_utils.round_down (sqrt disc)) in
      Some bound

(** Best |v| bound derivable from any constraint involving v. *)
let best_bound (e : t) (v : F.Tast.var) : float option =
  PairMap.fold
    (fun (i, j) _k acc ->
      if i = v.F.Tast.v_id then
        let y = Array.to_list e.vars |> List.find_opt (fun w -> w.F.Tast.v_id = j) in
        match y with
        | Some y -> (
            match extract_bound e v y with
            | Some b -> (
                match acc with
                | Some cur -> Some (Float.min cur b)
                | None -> Some b)
            | None -> acc)
        | None -> acc
      else acc)
    e.k None

let count_constraints (e : t) : int =
  PairMap.cardinal (PairMap.filter (fun _ k -> k < Float.infinity) e.k)

let pp ppf (e : t) =
  if is_top e then Fmt.string ppf "T"
  else
    let name id =
      match Array.to_list e.vars |> List.find_opt (fun v -> v.F.Tast.v_id = id) with
      | Some v -> v.F.Tast.v_name
      | None -> Fmt.str "v%d" id
    in
    Fmt.list ~sep:(Fmt.any ", ")
      (fun ppf ((i, j), k) ->
        Fmt.pf ppf "%s^2 - %g.%s.%s + %g.%s^2 <= %g" (name i) e.a (name i)
          (name j) e.b (name j) k)
      ppf
      (PairMap.bindings e.k)
