(** Symbolic manipulation of expressions (Sect. 6.3).

    Each scalar expression [e] is linearized into an interval linear form
    l[e] = Sum_i [a_i, b_i] v_i + [a, b] by recurrence on its structure:

    - linear operators (+, -, multiplication/division by a constant
      interval) act directly on linear forms;
    - non-linear operators evaluate one or both arguments into an
      interval (via the oracle) and proceed;
    - every floating-point operator adds an absolute rounding-error
      contribution so the form remains a sound over-approximation of the
      machine computation (the paper's "transformed into a sound
      approximate real expression").

    The caller must, per Sect. 6.3, only rely on the result after having
    checked with the plain interval evaluation that no arithmetic error
    (overflow, division by zero) is possible in [e]: this module assumes
    error-free evaluation and refines the interval result. *)

module F = Astree_frontend
open F.Tast

(** Oracle giving the currently-known float hull of each scalar
    variable (from the memory domain's interval component). *)
type oracle = var -> float * float

(** A linearization result: the form plus the float kind context in which
    rounding errors were accumulated, if any. *)
let rec linearize (oracle : oracle) (e : expr) : Linear_form.t option =
  match e.edesc with
  | Eint n -> Some (Linear_form.of_interval (float_of_int n) (float_of_int n))
  | Efloat f -> Some (Linear_form.of_interval f f)
  | Elval lv -> (
      match lv.ldesc with
      | Lvar v when F.Ctypes.is_scalar v.v_ty -> Some (Linear_form.of_var v)
      | _ ->
          (* array cells and fields are not variables of the relational
             world: evaluate them through the oracle?  Without a cell
             oracle we cannot do better than give up; the transfer layer
             substitutes an interval before calling us. *)
          None)
  | Eunop (Neg, a) ->
      Option.map
        (fun la ->
          let r = Linear_form.neg la in
          round_for e.ety oracle r)
        (linearize oracle a)
  | Eunop ((Lnot | Bnot | Fabs | Sqrt), _) -> None
  | Ebinop (Add, a, b) -> lin2 oracle e Linear_form.add a b
  | Ebinop (Sub, a, b) -> lin2 oracle e Linear_form.sub a b
  | Ebinop (Mul, a, b) -> (
      match (linearize oracle a, linearize oracle b) with
      | Some la, Some lb -> (
          (* multiply, evaluating one side to an interval; prefer the side
             that is already constant, else intervalize the second *)
          match (Linear_form.is_const la, Linear_form.is_const lb) with
          | Some ka, _ ->
              Some (round_for e.ety oracle (Linear_form.scale ka lb))
          | _, Some kb ->
              Some (round_for e.ety oracle (Linear_form.scale kb la))
          | None, None ->
              let kb = Linear_form.eval_coeff oracle lb in
              Some (round_for e.ety oracle (Linear_form.scale kb la)))
      | _ -> None)
  | Ebinop (Div, a, b) -> (
      match (linearize oracle a, linearize oracle b) with
      | Some la, Some lb -> (
          let kb =
            match Linear_form.is_const lb with
            | Some k -> k
            | None -> Linear_form.eval_coeff oracle lb
          in
          match Linear_form.div_const la kb with
          | Some r -> Some (round_for e.ety oracle r)
          | None -> None)
      | _ -> None)
  | Ebinop ((Mod | Shl | Shr | Band | Bor | Bxor | Land | Lor
            | Lt | Gt | Le | Ge | Eq | Ne), _, _) ->
      None
  | Ecast (s, a) -> (
      match s with
      | F.Ctypes.Tfloat k ->
          (* conversion rounds: add the error of one rounding at the
             target kind *)
          Option.map
            (fun la ->
              let m = Linear_form.magnitude oracle la in
              Linear_form.add_rounding_error k m la)
            (linearize oracle a)
      | F.Ctypes.Tint _ ->
          (* float->int truncation is non-linear: give up; int->int casts
             are exact when in range, which the transfer layer has already
             checked *)
          if F.Ctypes.is_integer (F.Ctypes.Tscalar a.ety) then
            linearize oracle a
          else None)

and lin2 oracle e f a b =
  match (linearize oracle a, linearize oracle b) with
  | Some la, Some lb -> Some (round_for e.ety oracle (f la lb))
  | _ -> None

(* Add the rounding error of the operator that produced [r], when the
   expression computes in floating point.  Integer operations are exact
   (overflow is handled by the transfer layer). *)
and round_for (ety : F.Ctypes.scalar) oracle (r : Linear_form.t) :
    Linear_form.t =
  match ety with
  | F.Ctypes.Tfloat k ->
      let m = Linear_form.magnitude oracle r in
      Linear_form.add_rounding_error k m r
  | F.Ctypes.Tint _ -> r

(** Refine an interval evaluation of [e] with its linearized form:
    returns the meet of [plain] with the form's interval value.  Example
    from the paper: X - 0.2*X with X in [0,1] evaluates to [-0.2, 1]
    bottom-up but the linear form 0.8*X evaluates to [0, 0.8]. *)
let refine_eval (oracle : oracle) (e : expr) (plain : Itv.t) : Itv.t =
  match e.ety with
  | F.Ctypes.Tint _ -> plain (* linear refinement targets float drift *)
  | F.Ctypes.Tfloat _ -> (
      match linearize oracle e with
      | None -> plain
      | Some form ->
          let lo, hi = Linear_form.eval oracle form in
          if Float.is_nan lo || Float.is_nan hi then plain
          else Itv.meet plain (Itv.float_range lo hi))
