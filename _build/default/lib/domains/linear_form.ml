(** Interval linear forms (Sect. 6.3): expressions of the shape

      l = Sum_i [a_i, b_i] . v_i + [a, b]

    over program variables, with interval coefficients.  Linear forms are
    the common language between the expression linearizer and the
    relational domains (octagons, ellipsoids); all coefficient arithmetic
    is interval arithmetic with outward rounding, so a linear form always
    over-approximates the real-field value of the expression it stands
    for. *)

module F = Astree_frontend
module VarMap = F.Tast.VarMap

(** An interval constant [lo, hi]. *)
type coeff = { lo : float; hi : float }

type t = {
  terms : coeff VarMap.t;  (** variable coefficients; absent = 0 *)
  const : coeff;           (** the constant interval term *)
}

let coeff_const f = { lo = f; hi = f }

let coeff_zero = coeff_const 0.0

let coeff_is_zero c = c.lo = 0.0 && c.hi = 0.0

let coeff_of_itv (i : Itv.t) : coeff option =
  match Itv.float_hull i with
  | Some (lo, hi) -> Some { lo; hi }
  | None -> None

let coeff_add a b =
  { lo = Float_utils.add_down a.lo b.lo; hi = Float_utils.add_up a.hi b.hi }

let coeff_neg a = { lo = -.a.hi; hi = -.a.lo }

let coeff_sub a b = coeff_add a (coeff_neg b)

let coeff_mul a b =
  let p1l = Float_utils.mul_down a.lo b.lo
  and p2l = Float_utils.mul_down a.lo b.hi
  and p3l = Float_utils.mul_down a.hi b.lo
  and p4l = Float_utils.mul_down a.hi b.hi in
  let p1u = Float_utils.mul_up a.lo b.lo
  and p2u = Float_utils.mul_up a.lo b.hi
  and p3u = Float_utils.mul_up a.hi b.lo
  and p4u = Float_utils.mul_up a.hi b.hi in
  {
    lo = min (min p1l p2l) (min p3l p4l);
    hi = max (max p1u p2u) (max p3u p4u);
  }

(* division by an interval not containing zero *)
let coeff_div a b =
  if b.lo <= 0.0 && b.hi >= 0.0 then None
  else
    let q1l = Float_utils.div_down a.lo b.lo
    and q2l = Float_utils.div_down a.lo b.hi
    and q3l = Float_utils.div_down a.hi b.lo
    and q4l = Float_utils.div_down a.hi b.hi in
    let q1u = Float_utils.div_up a.lo b.lo
    and q2u = Float_utils.div_up a.lo b.hi
    and q3u = Float_utils.div_up a.hi b.lo
    and q4u = Float_utils.div_up a.hi b.hi in
    Some
      {
        lo = min (min q1l q2l) (min q3l q4l);
        hi = max (max q1u q2u) (max q3u q4u);
      }

let coeff_abs_max c = Float.max (Float.abs c.lo) (Float.abs c.hi)

let pp_coeff ppf c =
  if c.lo = c.hi then Fmt.pf ppf "%g" c.lo else Fmt.pf ppf "[%g,%g]" c.lo c.hi

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let const (c : coeff) : t = { terms = VarMap.empty; const = c }

let zero : t = const coeff_zero

let of_var (v : F.Tast.var) : t =
  { terms = VarMap.singleton v (coeff_const 1.0); const = coeff_zero }

let of_interval lo hi : t = const { lo; hi }

(* ------------------------------------------------------------------ *)
(* Linear operations                                                   *)
(* ------------------------------------------------------------------ *)

let map_terms2 f a b =
  VarMap.merge
    (fun _ ca cb ->
      let c =
        f
          (Option.value ca ~default:coeff_zero)
          (Option.value cb ~default:coeff_zero)
      in
      if coeff_is_zero c then None else Some c)
    a b

let add (a : t) (b : t) : t =
  { terms = map_terms2 coeff_add a.terms b.terms;
    const = coeff_add a.const b.const }

let neg (a : t) : t =
  { terms = VarMap.map coeff_neg a.terms; const = coeff_neg a.const }

let sub (a : t) (b : t) : t = add a (neg b)

(** Multiplication by a constant interval. *)
let scale (k : coeff) (a : t) : t =
  if coeff_is_zero k then zero
  else
    {
      terms =
        VarMap.filter_map
          (fun _ c ->
            let c = coeff_mul k c in
            if coeff_is_zero c then None else Some c)
          a.terms;
      const = coeff_mul k a.const;
    }

(** Division by a constant interval not containing 0. *)
let div_const (a : t) (k : coeff) : t option =
  match coeff_div (coeff_const 1.0) k with
  | Some inv -> Some (scale inv a)
  | None -> None

let is_const (a : t) : coeff option =
  if VarMap.is_empty a.terms then Some a.const else None

(** The single-variable view [k.v + c], if the form has exactly one term. *)
let as_single_var (a : t) : (F.Tast.var * coeff * coeff) option =
  match VarMap.bindings a.terms with
  | [ (v, k) ] -> Some (v, k, a.const)
  | _ -> None

(** The two-variable view, for octagon transfer functions. *)
let as_two_vars (a : t) :
    (F.Tast.var * coeff * F.Tast.var * coeff * coeff) option =
  match VarMap.bindings a.terms with
  | [ (v1, k1); (v2, k2) ] -> Some (v1, k1, v2, k2, a.const)
  | _ -> None

let vars (a : t) : F.Tast.var list = List.map fst (VarMap.bindings a.terms)

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

(** Evaluate the form to an interval, given an oracle for variable
    ranges.  All computations use outward rounding. *)
let eval (oracle : F.Tast.var -> float * float) (a : t) : float * float =
  VarMap.fold
    (fun v k (lo, hi) ->
      let vlo, vhi = oracle v in
      let p = coeff_mul k { lo = vlo; hi = vhi } in
      (Float_utils.add_down lo p.lo, Float_utils.add_up hi p.hi))
    a.terms
    (a.const.lo, a.const.hi)

(** Evaluate to an interval coefficient. *)
let eval_coeff oracle a : coeff =
  let lo, hi = eval oracle a in
  { lo; hi }

(* ------------------------------------------------------------------ *)
(* Rounding-error enlargement (Sect. 6.3)                              *)
(* ------------------------------------------------------------------ *)

(** Add the absolute rounding error of one IEEE operation on kind [k]:
    given the magnitude bound [m] of the exact result, the rounded result
    differs by at most [rel_err k * m + abs_err k].  The error is absorbed
    into the constant term (the paper's "absolute error interval" choice,
    "more easily implemented and ... precise enough"). *)
let add_rounding_error (k : F.Ctypes.fkind) (magnitude : float) (a : t) : t =
  let e =
    Float_utils.add_up
      (Float_utils.mul_up (Float_utils.rel_err k) magnitude)
      (Float_utils.abs_err k)
  in
  { a with const = coeff_add a.const { lo = -.e; hi = e } }

(** Magnitude bound of the form under an oracle (used to size the error
    terms). *)
let magnitude oracle (a : t) : float =
  let lo, hi = eval oracle a in
  Float.max (Float.abs lo) (Float.abs hi)

let pp ppf (a : t) =
  let terms = VarMap.bindings a.terms in
  if terms = [] then pp_coeff ppf a.const
  else begin
    Fmt.list ~sep:(Fmt.any " + ")
      (fun ppf (v, c) -> Fmt.pf ppf "%a*%s" pp_coeff c v.F.Tast.v_name)
      ppf terms;
    if not (coeff_is_zero a.const) then Fmt.pf ppf " + %a" pp_coeff a.const
  end
