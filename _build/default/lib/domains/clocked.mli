(** The clocked abstract domain (Sect. 6.2.1).

    Counters triggered by external events cannot overflow in practice
    because events are counted at most once per clock cycle and the
    number of cycles is bounded by the maximal continuous operating
    time.  The clocked domain tracks, for each value [x], the triple
    ([x], [x - clock], [x + clock]) where [clock] is a hidden variable
    incremented at each [__astree_wait_for_clock()].

    In a non-bottom triple, a [Bot] clock component means "no
    information" (top); emptiness is carried by the value component. *)

type t = {
  v : Itv.t;       (** the value itself *)
  vminus : Itv.t;  (** value - clock *)
  vplus : Itv.t;   (** value + clock *)
}

val bot : t
val is_bot : t -> bool

(** Inject a plain interval, recording its current offsets to the clock. *)
val of_itv : Itv.t -> Itv.t -> t

(** The plain value component. *)
val to_itv : t -> Itv.t

(** Tighten the value from the clock components:
    [v /\ (v- + clock) /\ (v+ - clock)]. *)
val reduce : Itv.t -> t -> t

(** {1 Lattice operations} *)

val join : t -> t -> t
val meet : t -> t -> t

(** Value component widens with thresholds; unstable clock components
    jump straight to no-information (they drift by one per tick by
    construction, so chasing them up the threshold ladder is pure
    waste — the useful bounds like [counter - clock <= 0] are genuinely
    stable and never widen). *)
val widen : thresholds:Thresholds.t -> t -> t -> t

val narrow : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool

(** {1 Transfer functions} *)

(** Effect of a clock tick: [v-] shifts down by one, [v+] up by one. *)
val tick : t -> t

(** Addition of a constant interval, preserving the clock offsets
    (what bounds counters: [x := x + [0,1]] then {!tick} leaves
    [x - clock] non-increasing). *)
val add_const : Itv.t -> t -> t

(** Pointwise lifting of a unary interval operation (loses clock info). *)
val lift1_loose : (Itv.t -> Itv.t) -> Itv.t -> t -> t

(** Generic binary operation on value components (loses clock info). *)
val lift2_loose : (Itv.t -> Itv.t -> Itv.t) -> Itv.t -> t -> t -> t

(** Alias of {!add_const} kept for the counter idiom. *)
val incr_bounded : Itv.t -> t -> t

val pp : Format.formatter -> t -> unit
