(** The interval abstract domain (Sect. 6.2.1 of the paper), for both
    integer and IEEE-754 floating-point values.

    Integer bounds are native OCaml integers with [min_int]/[max_int]
    acting as -oo/+oo; float bounds are binary64 with outward (directed)
    rounding, so that every operation over-approximates its real
    counterpart.  NaN never appears in a bound: invalid operations are
    reported separately by the analyzer's transfer functions. *)

type t =
  | Bot                     (** unreachable *)
  | Int of int * int        (** integer interval [lo, hi] *)
  | Float of float * float  (** float interval [lo, hi]; bounds never NaN *)

(** {1 Construction} *)

val bot : t

(** [int_range lo hi] is the integer interval [lo, hi]; [Bot] if empty. *)
val int_range : int -> int -> t

(** [float_range lo hi] is the float interval [lo, hi]; [Bot] if empty or
    either bound is NaN. *)
val float_range : float -> float -> t

val int_const : int -> t
val float_const : float -> t
val top_int : t
val top_float : t

(** Interval of every value of a C integer type on the given target. *)
val of_int_type :
  Astree_frontend.Ctypes.target ->
  Astree_frontend.Ctypes.irank ->
  Astree_frontend.Ctypes.signedness ->
  t

(** Interval of all finite values of a C float kind. *)
val of_float_kind : Astree_frontend.Ctypes.fkind -> t

(** {1 Queries} *)

val is_bot : t -> bool
val is_int : t -> bool
val is_float : t -> bool
val is_singleton : t -> bool

(** Finite width when both bounds are finite, [None] otherwise. *)
val width : t -> float option

val equal : t -> t -> bool
val contains_zero : t -> bool

(** Convex hull as float bounds (used by the relational domains, which
    work in the real field); [None] on [Bot]. *)
val float_hull : t -> (float * float) option

val pp : Format.formatter -> t -> unit

(** {1 Lattice operations} *)

val subset : t -> t -> bool
val join : t -> t -> t
val meet : t -> t -> t

(** Widening with thresholds (Sect. 7.1.2): an unstable bound jumps to
    the nearest enclosing threshold of the (sorted, infinity-terminated)
    threshold array. *)
val widen : thresholds:float array -> t -> t -> t

(** Classical interval narrowing: refines infinite bounds only. *)
val narrow : t -> t -> t

(** {1 Forward transfer functions}

    Integer operations are computed on unbounded integers (with
    saturation at the native-int infinities); the analyzer intersects
    results with the destination type's range and reports overflow
    alarms.  Float operations round outward. *)

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** Division; the divisor should have had zero removed by the caller
    ({!exclude_zero}), but a zero-spanning divisor is still handled
    soundly (unbounded quotients). *)
val div : t -> t -> t

(** C truncated remainder (integers only). *)
val rem : t -> t -> t

val abs : t -> t

(** Square root of the non-negative part (floats only). *)
val sqrt_itv : t -> t

val shl : t -> t -> t
val shr : t -> t -> t
val band : t -> t -> t
val bor : t -> t -> t
val bxor : t -> t -> t
val bnot : t -> t

(** {1 Conversions} *)

(** Integer-to-float conversion (exact below 2^52, outward beyond). *)
val int_to_float : t -> t

(** Float-to-integer truncation (C semantics: toward zero). *)
val float_to_int : t -> t

(** Outward rounding of a float interval to binary32. *)
val to_single : t -> t

(** {1 Backward (guard) refinements}

    [refine_op x y] refines [x] under the constraint [x op y]. *)

val refine_le : t -> t -> t
val refine_ge : t -> t -> t
val refine_lt : t -> t -> t
val refine_gt : t -> t -> t
val refine_eq : t -> t -> t

(** Only effective when [y] is a singleton at one of [x]'s bounds. *)
val refine_ne : t -> t -> t

(** Remove zero when it sits at a bound (for division guards). *)
val exclude_zero : t -> t
