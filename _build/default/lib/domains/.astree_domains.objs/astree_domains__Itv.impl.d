lib/domains/itv.ml: Array Astree_frontend Float Float_utils Fmt List Option
