lib/domains/itv.mli: Astree_frontend Format
