lib/domains/linearize.ml: Astree_frontend Float Itv Linear_form Option
