lib/domains/linear_form.mli: Astree_frontend Format Itv
