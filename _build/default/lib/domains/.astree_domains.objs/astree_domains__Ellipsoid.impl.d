lib/domains/ellipsoid.ml: Array Astree_frontend Float Float_utils Fmt Int List Map Thresholds
