lib/domains/ellipsoid.mli: Astree_frontend Format Map Thresholds
