lib/domains/float_utils.ml: Astree_frontend Float Int32 Int64
