lib/domains/float_utils.mli: Astree_frontend
