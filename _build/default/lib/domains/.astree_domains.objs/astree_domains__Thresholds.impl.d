lib/domains/thresholds.ml: Array Astree_frontend Float Fmt List
