lib/domains/clocked.ml: Fmt Itv Thresholds
