lib/domains/octagon.ml: Array Astree_frontend Float Float_utils Fmt Linear_form List Option Thresholds VarMap
