lib/domains/clocked.mli: Format Itv Thresholds
