lib/domains/decision_tree.ml: Array Astree_frontend Fmt Itv List
