lib/domains/thresholds.mli: Format
