lib/domains/linear_form.ml: Astree_frontend Float Float_utils Fmt Itv List Option
