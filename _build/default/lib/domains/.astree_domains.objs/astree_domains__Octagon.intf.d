lib/domains/octagon.mli: Astree_frontend Format Linear_form Thresholds
