lib/domains/linearize.mli: Astree_frontend Itv Linear_form
