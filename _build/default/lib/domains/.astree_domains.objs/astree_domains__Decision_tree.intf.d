lib/domains/decision_tree.mli: Astree_frontend Format Itv Thresholds
