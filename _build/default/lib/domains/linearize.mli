(** Symbolic manipulation of expressions (Sect. 6.3): linearization of
    typed scalar expressions into interval linear forms, with absolute
    rounding-error accumulation per floating-point operator. *)

(** Oracle giving the currently-known float hull of each scalar
    variable (from the memory domain's interval component). *)
type oracle = Astree_frontend.Tast.var -> float * float

(** Linearize an expression; [None] when a sub-expression is not
    representable (non-scalar lvalues, bitwise/boolean operators,
    intrinsics, float-to-int truncation). *)
val linearize : oracle -> Astree_frontend.Tast.expr -> Linear_form.t option

(** Refine a plain interval evaluation of a float expression by the
    linear form's interval value (the paper's [X - 0.2*X] example:
    bottom-up gives [-0.2, 1], the linear form [0.8*X] gives [0, 0.8]).
    Per Sect. 6.3 this must only be called once the plain evaluation has
    been checked free of possible arithmetic errors. *)
val refine_eval : oracle -> Astree_frontend.Tast.expr -> Itv.t -> Itv.t
