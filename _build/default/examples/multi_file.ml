(* Multi-file programs through the simple linker (Sect. 5.1: "a simple
   linker allows programs consisting of several source files to be
   processed").

   Run with:  dune exec examples/multi_file.exe *)

module C = Astree_core
module G = Astree_gen

(* a handwritten two-unit program sharing a header *)
let header =
  {|
#ifndef CTRL_H
#define CTRL_H
#define SCALE 0.5f
struct channel { float value; _Bool valid; };
#endif
|}

let sensors_c =
  {|
#include "ctrl.h"
volatile float raw_input;
struct channel chan;

void acquire(void) {
  chan.value = raw_input * SCALE;
  chan.valid = (chan.value > -50.0f) && (chan.value < 50.0f);
}
|}

let control_c =
  {|
#include "ctrl.h"
extern struct channel chan;
void acquire(void);
float command;

int main(void) {
  __astree_input_range(raw_input, -80.0, 80.0);
  command = 0.0f;
  while (1) {
    acquire();
    if (chan.valid) {
      command = 0.9f * command + chan.value;
    }
    __astree_wait_for_clock();
  }
  return 0;
}
extern volatile float raw_input;
|}

let () =
  Fmt.pr "=== handwritten two-unit program ===@.";
  let env =
    Astree_frontend.Preproc.make_env
      ~read_file:(fun name -> if name = "ctrl.h" then Some header else None)
      ()
  in
  let ast =
    Astree_frontend.Linker.parse_and_link ~env
      [ ("sensors.c", sensors_c); ("control.c", control_c) ]
  in
  let p = Astree_frontend.Typecheck.elab_program ast in
  let p, _ = Astree_frontend.Simplify.run p in
  let r = C.Analysis.analyze p in
  Fmt.pr "alarms: %d@." (C.Analysis.n_alarms r);
  List.iter (fun a -> Fmt.pr "  %a@." C.Alarm.pp a) r.C.Analysis.r_alarms;

  Fmt.pr "@.=== generated member split over 4 translation units ===@.";
  let files =
    G.Generator.to_files
      {
        G.Generator.default with
        target_lines = 600;
        mix =
          G.Shapes.
            [ Counter; Filter; Rate_limiter; Integrator; Lag; Relay; Decay ];
      }
      ~n_files:4
  in
  List.iter
    (fun (name, src) ->
      Fmt.pr "  %-10s %4d lines@." name
        (List.length (String.split_on_char '\n' src)))
    files;
  let r = C.Analysis.analyze_sources files in
  Fmt.pr "linked and analyzed: %d alarm(s)@." (C.Analysis.n_alarms r)
