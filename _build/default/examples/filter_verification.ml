(* Verifying a second-order digital filter (Fig. 1 of the paper) with the
   ellipsoid domain (Sect. 6.2.3), and comparing the proven bound against
   concrete simulated trajectories.

   Run with:  dune exec examples/filter_verification.exe *)

module C = Astree_core
module D = Astree_domains
module F = Astree_frontend

let a_coeff = 1.5
let b_coeff = 0.7

let program =
  Fmt.str
    {|
volatile float input;
volatile _Bool reinit;
float X;
float Y;

int main(void) {
  __astree_input_range(input, -1.0, 1.0);
  __astree_input_range(reinit, 0.0, 1.0);
  X = 0.0f;
  Y = 0.0f;
  while (1) {
    float t;
    t = input;
    if (reinit) {
      /* reinitialization branch of Fig. 1 */
      Y = t;
      X = t;
    } else {
      /* X' := aX - bY + t, the affine transformation Phi */
      float X2;
      X2 = %gf * X - %gf * Y + t;
      Y = X;
      X = X2;
    }
    __astree_wait_for_clock();
  }
  return 0;
}
|}
    a_coeff b_coeff

let () =
  Fmt.pr "=== second-order digital filter (a=%g, b=%g) ===@." a_coeff b_coeff;
  Fmt.pr "Prop. 1 conditions: 0 < b < 1: %b, a^2 - 4b < 0: %b@."
    (b_coeff > 0. && b_coeff < 1.)
    ((a_coeff *. a_coeff) -. (4. *. b_coeff) < 0.);

  (* 1. the full analyzer proves the filter bounded: no alarms *)
  let r = C.Analysis.analyze_string program in
  Fmt.pr "full analyzer: %d alarm(s)@." (C.Analysis.n_alarms r);

  (* extract the proven range of the filter state X *)
  let actx = r.C.Analysis.r_actx in
  let x_bound = ref None in
  Hashtbl.iter
    (fun _ (inv : C.Astate.t) ->
      C.Env.iter
        (fun cell_id av ->
          let cell = C.Cell.of_id actx.C.Transfer.intern cell_id in
          if cell.C.Cell.root.F.Tast.v_name = "X" then
            x_bound := Some (C.Avalue.itv av))
        inv.C.Astate.env)
    actx.C.Transfer.invariants;
  (match !x_bound with
  | Some i -> Fmt.pr "proven loop invariant: X in %a@." D.Itv.pp i
  | None -> Fmt.pr "no bound recorded for X@.");

  (* 2. without the ellipsoid domain, the analysis cannot bound X *)
  let cfg = { C.Config.default with C.Config.use_ellipsoids = false } in
  let r' = C.Analysis.analyze_string ~cfg program in
  Fmt.pr "without ellipsoids: %d alarm(s) (interval/octagon domains cannot@."
    (C.Analysis.n_alarms r');
  Fmt.pr " express the rotating X^2 - aXY + bY^2 <= k invariant)@.";

  (* 3. simulate concrete trajectories through the concrete interpreter
     and report the worst value reached, to show the proven bound indeed
     over-approximates reality *)
  let p, _ = C.Analysis.compile [ ("<filter>", program) ] in
  let worst = ref 0.0 in
  let seeds = [ 1; 2; 3; 4; 5 ] in
  List.iter
    (fun seed ->
      let rng = ref seed in
      let next_float lo hi =
        rng := (!rng * 1103515245) + 12345;
        let u = float_of_int (abs !rng mod 1000000) /. 1000000.0 in
        lo +. (u *. (hi -. lo))
      in
      let input spec = next_float spec.F.Tast.in_lo spec.F.Tast.in_hi in
      let on_tick (st : F.Interp.state) =
        match F.Interp.read_global_scalar st "X" with
        | Some (F.Interp.Vfloat x) ->
            if Float.abs x > !worst then worst := Float.abs x
        | _ -> ()
      in
      match F.Interp.run ~max_ticks:5000 ~input ~on_tick p with
      | F.Interp.Finished -> ()
      | F.Interp.Error (k, l) ->
          Fmt.pr "concrete run error (unexpected): %a at %a@."
            F.Interp.pp_error_kind k F.Loc.pp l)
    seeds;
  Fmt.pr "worst |X| over %d simulated trajectories of 5000 ticks: %g@."
    (List.length seeds) !worst;
  match !x_bound with
  | Some (D.Itv.Float (lo, hi)) ->
      Fmt.pr "check: %g <= max(|%g|, |%g|): %b@." !worst lo hi
        (!worst <= Float.max (Float.abs lo) (Float.abs hi))
  | _ -> ()
