(* Boolean/numerical relations through decision trees (Sect. 6.2.4).

   The analyzed family stores test results into boolean variables and
   retrieves them later (the code-generator style described in Sect. 10);
   proving the guarded division safe requires relating the boolean to the
   numerical variable it was computed from.

   Run with:  dune exec examples/boolean_control.exe *)

module C = Astree_core

let program =
  {|
volatile int raw;        /* sensor channel, 0 means "no measure" */
_Bool no_measure;
_Bool in_high_range;
float scaled;

int main(void) {
  __astree_input_range(raw, 0.0, 1000.0);
  scaled = 0.0f;
  while (1) {
    int x;
    x = raw;
    /* one test, stored into a boolean variable ... */
    no_measure = (x == 0);
    in_high_range = (x > 500);
    /* ... something else happens ... */
    if (in_high_range) {
      scaled = 2.0f;
    } else {
      scaled = 1.0f;
    }
    /* ... and the first test is finally retrieved (Sect. 10) */
    if (!no_measure) {
      scaled = scaled * 1000.0f / (float)x;
    }
    __astree_wait_for_clock();
  }
  return 0;
}
|}

let run name cfg =
  let r = C.Analysis.analyze_string ~cfg program in
  Fmt.pr "%-32s: %d alarm(s)@." name (C.Analysis.n_alarms r);
  List.iter (fun a -> Fmt.pr "   %a@." C.Alarm.pp a) r.C.Analysis.r_alarms;
  r

let () =
  Fmt.pr "=== boolean relay logic (Sect. 6.2.4) ===@.";
  let r = run "decision trees on" C.Config.default in
  Fmt.pr "decision-tree packs: %d@." r.C.Analysis.r_stats.C.Analysis.s_dt_packs;
  let _ =
    run "decision trees off"
      { C.Config.default with C.Config.use_decision_trees = false }
  in
  let _ =
    run "pack bound 1 boolean (7.2.3)"
      { C.Config.default with C.Config.max_dtree_bools = 1 }
  in
  Fmt.pr
    "With the pack, the path no_measure = false remembers x >= 1, so@.\
     the division is proved safe; without it, x's interval still@.\
     contains 0 at the division point and a false alarm is raised.@."
