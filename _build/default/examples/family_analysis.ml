(* End-to-end analysis of a generated member of the program family, the
   way Sect. 8 exercises the real fly-by-wire code: full analysis, alarm
   report, invariant census, and the useful-octagon-packs rerun of
   Sect. 7.2.2.

   Run with:  dune exec examples/family_analysis.exe [-- kloc] *)

module C = Astree_core
module G = Astree_gen

let () =
  let kloc =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 1.0
  in
  Fmt.pr "=== family member at ~%g kLOC ===@." kloc;
  let g = G.Generator.member ~kloc () in
  Fmt.pr "generated: %d lines, %d shapes@." g.G.Generator.n_lines
    g.G.Generator.n_shapes;
  List.iter
    (fun (k, n) -> Fmt.pr "  %-14s x%d@." (G.Shapes.kind_name k) n)
    (List.sort compare g.G.Generator.shape_kinds);

  (* first, full analysis with every octagon pack *)
  let t0 = Unix.gettimeofday () in
  let r = C.Analysis.analyze_string g.G.Generator.source in
  let t_full = Unix.gettimeofday () -. t0 in
  Fmt.pr "@.full analysis: %d alarm(s) in %.2fs@." (C.Analysis.n_alarms r)
    t_full;
  List.iter (fun a -> Fmt.pr "  %a@." C.Alarm.pp a) r.C.Analysis.r_alarms;
  Fmt.pr "%a@." C.Analysis.pp_stats r.C.Analysis.r_stats;

  (* invariant census, as in Sect. 9.4.1 *)
  (match C.Invariant_census.main_loop_census r with
  | Some c -> Fmt.pr "@.main loop invariant census:@.%a@." C.Invariant_census.pp c
  | None -> ());

  (* Sect. 7.2.2: rerun keeping only the packs that proved useful *)
  let useful = C.Analysis.useful_octagon_packs r in
  Fmt.pr "@.useful octagon packs: %d / %d@." (List.length useful)
    r.C.Analysis.r_stats.C.Analysis.s_oct_packs;
  let cfg =
    { C.Config.default with C.Config.useful_packs_only = Some ("rerun", useful) }
  in
  let t0 = Unix.gettimeofday () in
  let r2 = C.Analysis.analyze_string ~cfg g.G.Generator.source in
  let t_opt = Unix.gettimeofday () -. t0 in
  Fmt.pr "rerun with useful packs only: %d alarm(s) in %.2fs (%.1fx faster)@."
    (C.Analysis.n_alarms r2) t_opt
    (t_full /. Float.max t_opt 1e-9)
