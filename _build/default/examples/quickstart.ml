(* Quickstart: analyze a small periodic synchronous program through the
   public API and inspect the results.

   Run with:  dune exec examples/quickstart.exe *)

module C = Astree_core
module D = Astree_domains

(* A miniature member of the program family (Sect. 4): read a sensor,
   integrate it with a leak, count the cycles where it is positive. *)
let program =
  {|
volatile float sensor;   /* hardware register, range given below */
float level;
int positive_cycles;

int main(void) {
  __astree_input_range(sensor, -10.0, 10.0);
  level = 0.0f;
  positive_cycles = 0;
  while (1) {
    /* leaky integration: stays within 10/(1-0.9) = 100 */
    level = 0.9f * level + sensor;
    if (sensor > 0.0f) {
      positive_cycles = positive_cycles + 1;
    }
    __astree_wait_for_clock();
  }
  return 0;
}
|}

let () =
  (* 1. analyze with the default configuration (all domains on) *)
  let result = C.Analysis.analyze_string program in
  Fmt.pr "=== quickstart ===@.";
  Fmt.pr "alarms: %d@." (C.Analysis.n_alarms result);
  List.iter (fun a -> Fmt.pr "  %a@." C.Alarm.pp a) result.C.Analysis.r_alarms;

  (* 2. look at the invariant the analyzer found for the main loop *)
  let actx = result.C.Analysis.r_actx in
  Hashtbl.iter
    (fun loop_id (inv : C.Astate.t) ->
      Fmt.pr "loop %d invariant:@." loop_id;
      C.Env.iter
        (fun cell_id av ->
          let cell = C.Cell.of_id actx.C.Transfer.intern cell_id in
          Fmt.pr "  %a in %a@." C.Cell.pp cell D.Itv.pp (C.Avalue.itv av))
        inv.C.Astate.env)
    actx.C.Transfer.invariants;

  (* 3. contrast with the baseline analyzer of [5] (intervals only,
     no thresholds): the same program now raises false alarms *)
  let baseline = C.Analysis.analyze_string ~cfg:C.Config.baseline program in
  Fmt.pr "baseline analyzer (intervals only): %d alarm(s)@."
    (C.Analysis.n_alarms baseline);
  List.iter
    (fun a -> Fmt.pr "  %a@." C.Alarm.pp a)
    baseline.C.Analysis.r_alarms;
  Fmt.pr "(all of these are FALSE alarms: the refined analyzer proves them impossible)@."
