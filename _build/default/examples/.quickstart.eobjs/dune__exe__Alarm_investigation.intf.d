examples/alarm_investigation.mli:
