examples/family_analysis.mli:
