examples/quickstart.ml: Astree_core Astree_domains Fmt Hashtbl List
