examples/filter_verification.mli:
