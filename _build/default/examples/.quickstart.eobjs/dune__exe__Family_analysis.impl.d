examples/family_analysis.ml: Array Astree_core Astree_gen Float Fmt List Sys Unix
