examples/filter_verification.ml: Astree_core Astree_domains Astree_frontend Float Fmt Hashtbl List
