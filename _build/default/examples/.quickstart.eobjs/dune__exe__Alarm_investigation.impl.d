examples/alarm_investigation.ml: Array Astree_core Astree_domains Astree_frontend Astree_slicer Fmt Hashtbl List
