examples/boolean_control.mli:
