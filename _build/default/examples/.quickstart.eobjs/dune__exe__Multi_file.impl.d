examples/multi_file.ml: Astree_core Astree_frontend Astree_gen Fmt List String
