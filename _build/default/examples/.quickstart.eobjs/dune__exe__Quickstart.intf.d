examples/quickstart.mli:
