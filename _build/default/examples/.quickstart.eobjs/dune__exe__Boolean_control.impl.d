examples/boolean_control.ml: Astree_core Fmt List
