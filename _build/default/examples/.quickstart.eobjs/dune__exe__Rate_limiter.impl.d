examples/rate_limiter.ml: Astree_core Astree_domains Fmt List
