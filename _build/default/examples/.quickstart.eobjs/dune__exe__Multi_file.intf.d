examples/multi_file.mli:
