(* The rate-limiter fragment of Sect. 6.2.2: proving L <= X requires a
   relational domain; the octagon domain suffices (no need for the more
   expensive polyhedra).

   Run with:  dune exec examples/rate_limiter.exe *)

module C = Astree_core
module D = Astree_domains

(* The paper's fragment:
     R := X - Z;  L := X;  if (R > V) L := Z + V;
   embedded in a synchronous loop where Z tracks the limited output. *)
let program =
  {|
volatile float X;     /* commanded value */
volatile float V;     /* maximal step, a calibration input */
float Z;              /* previous output */
float L;              /* limited output */

int main(void) {
  __astree_input_range(X, -100.0, 100.0);
  __astree_input_range(V, 0.0, 5.0);
  Z = 0.0f;
  L = 0.0f;
  while (1) {
    float R;
    float xv;
    float vv;
    xv = X;
    vv = V;
    R = xv - Z;
    L = xv;
    if (R > vv) {
      L = Z + vv;
    }
    Z = L;
    __astree_wait_for_clock();
  }
  return 0;
}
|}

let analyze_with name cfg =
  let r = C.Analysis.analyze_string ~cfg program in
  Fmt.pr "%-28s: %d alarm(s)" name (C.Analysis.n_alarms r);
  List.iter (fun a -> Fmt.pr "  [%a]" C.Alarm.pp_kind a.C.Alarm.a_kind)
    r.C.Analysis.r_alarms;
  Fmt.pr "@.";
  r

let () =
  Fmt.pr "=== rate limiter (Sect. 6.2.2) ===@.";
  let _full = analyze_with "octagons on" C.Config.default in
  let no_oct =
    { C.Config.default with C.Config.use_octagons = false }
  in
  let _ = analyze_with "octagons off" no_oct in
  Fmt.pr
    "The octagon invariant c <= L - Z <= d synthesized at the assignment@.\
     L := Z + V (Sect. 6.2.2) is what keeps L bounded; without it the@.\
     interval iteration pushes L and Z to the widening thresholds and@.\
     eventually reports spurious overflow.@."
