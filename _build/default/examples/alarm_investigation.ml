(* The alarm-inspection workflow of Sect. 3.1/3.3: analyze, take an
   alarm, extract the backward slice that leads to it, then shrink the
   slice to the variables the invariant says nothing useful about
   (abstract slicing).

   Run with:  dune exec examples/alarm_investigation.exe *)

module C = Astree_core
module F = Astree_frontend
module S = Astree_slicer
module D = Astree_domains

(* a program with a genuine defect buried behind some plumbing *)
let program =
  {|
volatile float sensor;
volatile int mode;
float gain;
float offset;
float scaled;
float unrelated_a;
float unrelated_b;
float output;

int main(void) {
  __astree_input_range(sensor, -100.0, 100.0);
  __astree_input_range(mode, 0.0, 3.0);
  gain = 1.0f; offset = 0.0f; scaled = 0.0f;
  unrelated_a = 0.0f; unrelated_b = 0.0f; output = 0.0f;
  while (1) {
    int m;
    float s;
    m = mode;
    s = sensor;
    unrelated_a = unrelated_a * 0.5f + 1.0f;
    if (m == 2) { gain = 0.0f; } else { gain = 2.0f; }
    unrelated_b = unrelated_a + 3.0f;
    scaled = s + offset;
    /* defect: gain may be 0 when m == 2 */
    output = scaled / gain;
    __astree_wait_for_clock();
  }
  return 0;
}
|}

let () =
  Fmt.pr "=== step 1: analyze ===@.";
  let p, _ = C.Analysis.compile [ ("ctrl.c", program) ] in
  let r = C.Analysis.analyze p in
  List.iter (fun a -> Fmt.pr "%a@." C.Alarm.pp a) r.C.Analysis.r_alarms;
  match
    List.find_opt
      (fun (a : C.Alarm.t) -> a.C.Alarm.a_kind = C.Alarm.Div_by_zero)
      r.C.Analysis.r_alarms
  with
  | None -> Fmt.pr "no division alarm (unexpected)@."
  | Some alarm ->
      Fmt.pr "@.=== step 2: classical backward slice from the alarm ===@.";
      let g = S.Depgraph.build p in
      (* locate the statement containing the alarm point *)
      let crit_loc =
        let best = ref alarm.C.Alarm.a_loc in
        Array.iter
          (fun (n : S.Depgraph.node) ->
            if
              n.S.Depgraph.n_stmt.F.Tast.sloc.F.Loc.line
              = alarm.C.Alarm.a_loc.F.Loc.line
            then best := n.S.Depgraph.n_stmt.F.Tast.sloc)
          g.S.Depgraph.nodes;
        !best
      in
      let crit = { S.Slicer.c_loc = crit_loc; c_vars = None } in
      let full = S.Slicer.slice g crit in
      Fmt.pr "%a" S.Slicer.pp_slice full;
      Fmt.pr "(%d statements; the unrelated_* computations are out)@."
        (S.Slicer.slice_size full);

      Fmt.pr "@.=== step 3: abstract slice ===@.";
      (* the paper: restrict to the variables "we lack information
         about"; here: those whose invariant interval still contains the
         dangerous value or is very wide *)
      let actx = r.C.Analysis.r_actx in
      let inv =
        Hashtbl.fold
          (fun _ st acc ->
            match acc with None -> Some st | some -> some)
          actx.C.Transfer.invariants None
      in
      let interesting (v : F.Tast.var) =
        match inv with
        | None -> true
        | Some st -> (
            if not (F.Ctypes.is_scalar v.F.Tast.v_ty) then false
            else
              match C.Transfer.var_itv actx st v with
              | D.Itv.Float (lo, hi) -> lo <= 0.0 && hi >= 0.0
              | D.Itv.Int (lo, hi) -> lo <= 0 && hi >= 0
              | D.Itv.Bot -> false)
      in
      let abs = S.Slicer.abstract_slice g ~interesting crit in
      Fmt.pr "%a" S.Slicer.pp_slice abs;
      Fmt.pr
        "(%d statements: only the computations feeding the possibly-zero@.\
        \ divisor remain — the paper's 'abstract slice')@."
        (S.Slicer.slice_size abs)
