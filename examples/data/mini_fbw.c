/* mini_fbw.c — a miniature "fly-by-wire" control loop exercising every
   idiom the ASTRÉE paper attributes to its program family:
   clock-bounded event counters, a rate limiter (octagons), a
   second-order filter (ellipsoids), stored boolean tests (decision
   trees), an interpolation table, and a piecewise computation needing
   trace partitioning. */
/* astree-partition: select_gain */

#define STICK_MAX 100.0f
#define RATE_STEP 2.0f
#define TAB_N 6

/* ---- environment ---- */
volatile float stick;       /* pilot stick position */
volatile float sensor;      /* airspeed-ish measurement */
volatile _Bool in_failure;  /* discrete failure flag */
volatile int mode;          /* flight mode selector */

/* ---- state ---- */
float cmd_limited;          /* rate-limited command */
float cmd_prev;
float filt_x;               /* filter state */
float filt_y;
int   failure_count;
int   mode_now;             /* snapshot of the volatile mode selector */
_Bool no_signal;
float gain;
float interp_out;
short actuator;

const float gain_tab[TAB_N] = { 0.5f, 0.8f, 1.0f, 1.2f, 1.5f, 1.7f };

/* rate limiter: the paper's Sect. 6.2.2 fragment */
void limit_rate(void) {
  float r;
  float x;
  x = stick;
  r = x - cmd_prev;
  cmd_limited = x;
  if (r > RATE_STEP) { cmd_limited = cmd_prev + RATE_STEP; }
  cmd_prev = cmd_limited;
}

/* second-order low-pass filter: Fig. 1 */
void filter_input(void) {
  float t;
  t = sensor;
  if (in_failure) {
    filt_y = t;
    filt_x = t;
  } else {
    float x2;
    x2 = 1.4f * filt_x - 0.68f * filt_y + t;
    filt_y = filt_x;
    filt_x = x2;
  }
}

/* stored test, retrieved later: Sect. 6.2.4 / 10 */
void check_signal(void) {
  mode_now = mode;            /* read the volatile register once */
  no_signal = (mode_now == 0);
  if (in_failure) { failure_count = failure_count + 1; }
}

/* gain interpolation over a constant table */
void interpolate(void) {
  float x;
  int k;
  float fr;
  x = stick * 0.05f;          /* in [-5, 5] */
  if (x < 0.0f) { x = -x; }
  k = (int)x;
  if (k > TAB_N - 2) { k = TAB_N - 2; }
  fr = x - (float)k;
  interp_out = gain_tab[k] + (gain_tab[k + 1] - gain_tab[k]) * fr;
}

/* piecewise gain: safe per-branch, needs trace partitioning */
void select_gain(void) {
  float den;
  float num;
  float s;
  s = sensor;
  if (s < -10.0f)      { den = -4.0f; num = 2.0f; }
  else if (s > 10.0f)  { den = 4.0f;  num = 2.0f; }
  else                 { den = 2.0f;  num = 1.0f; }
  gain = num / den;
}

int main(void) {
  __astree_input_range(stick, -100.0, 100.0);
  __astree_input_range(sensor, -50.0, 50.0);
  __astree_input_range(in_failure, 0.0, 1.0);
  __astree_input_range(mode, 0.0, 5.0);

  cmd_limited = 0.0f; cmd_prev = 0.0f;
  filt_x = 0.0f; filt_y = 0.0f;
  failure_count = 0;
  mode_now = 0;
  no_signal = 0;
  gain = 0.5f;
  interp_out = 0.0f;
  actuator = 0;

  while (1) {
    limit_rate();
    filter_input();
    check_signal();
    interpolate();
    select_gain();
    if (!no_signal) {
      /* mode_now >= 1 here thanks to the stored test (Sect. 6.2.4) */
      actuator = (short)(cmd_limited * gain * interp_out * 10.0f / (float)mode_now);
    }
    __astree_wait_for_clock();
  }
  return 0;
}
