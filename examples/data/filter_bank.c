/* filter_bank.c — a bank of three cascaded second-order filters, each
   with its own coefficients; the cascade means filter i+1's input is
   filter i's (ellipsoid-bounded) output. */

volatile float source;
volatile _Bool reset_all;

float x1; float y1;
float x2; float y2;
float x3; float y3;
short out_reg;

void stage1(void) {
  float t;
  t = source;
  if (reset_all) { y1 = t; x1 = t; }
  else { float n; n = 1.2f * x1 - 0.54f * y1 + t; y1 = x1; x1 = n; }
}

void stage2(void) {
  float t;
  t = 0.1f * x1;                 /* bounded by stage 1's invariant */
  if (reset_all) { y2 = t; x2 = t; }
  else { float n; n = 1.5f * x2 - 0.7f * y2 + t; y2 = x2; x2 = n; }
}

void stage3(void) {
  float t;
  t = 0.1f * x2;
  if (reset_all) { y3 = t; x3 = t; }
  else { float n; n = -0.9f * x3 - 0.4f * y3 + t; y3 = x3; x3 = n; }
}

int main(void) {
  __astree_input_range(source, -1.0, 1.0);
  __astree_input_range(reset_all, 0.0, 1.0);
  x1 = 0.0f; y1 = 0.0f; x2 = 0.0f; y2 = 0.0f; x3 = 0.0f; y3 = 0.0f;
  out_reg = 0;
  while (1) {
    stage1();
    stage2();
    stage3();
    out_reg = (short)(x3 * 100.0f);
    __astree_wait_for_clock();
  }
  return 0;
}
