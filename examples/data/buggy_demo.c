/* buggy_demo.c — three genuine defects for demonstrating alarm
   reporting and the alarm-investigation slicer:
     1. a division whose divisor crosses zero,
     2. an out-of-bounds table read,
     3. an integer accumulator that overflows.  */

volatile int channel;       /* [0, 8], but the table has 8 entries */
volatile float measure;     /* [-100, 100] */

float table[8];
float selected;
float ratio;
int accum;

int main(void) {
  __astree_input_range(channel, 0.0, 8.0);
  __astree_input_range(measure, -100.0, 100.0);
  selected = 0.0f; ratio = 0.0f; accum = 1;
  while (1) {
    selected = table[channel];                  /* (2) channel may be 8 */
    ratio = measure / (float)(channel - 4);     /* (1) channel may be 4 */
    accum = accum * 2;                          /* (3) unbounded doubling */
    __astree_wait_for_clock();
  }
  return 0;
}
