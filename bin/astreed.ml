(* The analysis daemon's command line.

   Usage:  astreed --socket PATH [--max-inflight N] [--queue-depth N]
                   [--timeout SECS] [--max-mem MB] [--cache DIR]
                   [--checkpoint FILE] [--checkpoint-period SECS]
                   [--config FILE] [--client-quota N]
                   [--breaker-crashes N] [--breaker-cooldown SECS]
                   [--supervise] [--max-restarts N]
                   [--http PORT] [--access-log FILE] [--access-log-max BYTES]
                   [--trace FILE] [--verbose]

   Serves newline-delimited JSON requests (analyze / status / metrics /
   shutdown) over a Unix-domain socket, keeping the typed-IR and
   function-summary caches resident across requests.  With --supervise
   the serving process runs as a child under a restarting supervisor;
   with a checkpoint file the resident summary store survives crashes.
   See DESIGN.md sections 12 and 15 and README "Server mode". *)

module Srv = Astree_server
open Cmdliner

let run socket workers queue_depth timeout max_mem cache_dir checkpoint
    checkpoint_period config_file client_quota breaker_crashes
    breaker_cooldown supervise max_restarts http_port access_log
    access_log_max trace_file verbose =
  (match trace_file with
  | None -> ()
  | Some f ->
      Astree_obs.Trace.enabled := true;
      Astree_obs.Trace.set_sink (open_out f));
  (* checkpoint file resolution: an explicit path wins; a cache
     directory hosts one; a supervised daemon always checkpoints (a
     supervisor without recovered warm state is only half the story),
     next to its socket *)
  let checkpoint =
    match checkpoint with
    | Some _ as c -> c
    | None -> (
        match cache_dir with
        | Some dir -> Some (Filename.concat dir "daemon.ckpt")
        | None -> if supervise then Some (socket ^ ".ckpt") else None)
  in
  let cfg =
    {
      Srv.Daemon.default with
      Srv.Daemon.d_socket = socket;
      d_workers = max 1 workers;
      d_queue_depth = max 0 queue_depth;
      d_timeout = (if timeout > 0. then timeout else 0.);
      d_max_mem = max 0 max_mem;
      d_cache_dir = cache_dir;
      d_verbose = verbose;
      d_client_quota = max 0 client_quota;
      d_breaker_n = max 0 breaker_crashes;
      d_breaker_cooldown = Float.max 0. breaker_cooldown;
      d_checkpoint = checkpoint;
      d_checkpoint_s = Float.max 0. checkpoint_period;
      d_config_file = config_file;
      d_http_port = http_port;
      d_access_log = access_log;
      d_access_log_max = max 4096 access_log_max;
    }
  in
  let code =
    match
      match config_file with
      | None -> Ok cfg
      | Some f -> Srv.Daemon.load_config_file cfg f
    with
    | Error msg ->
        prerr_endline ("astreed: cannot load --config: " ^ msg);
        1
    | Ok cfg ->
        if supervise then
          Srv.Supervisor.run
            ~config:
              {
                Srv.Supervisor.default with
                Srv.Supervisor.s_max_restarts = max 0 max_restarts;
                s_verbose = verbose;
                s_access_log = access_log;
              }
            (fun ~restarts ~sup_started ->
              Srv.Daemon.run
                {
                  cfg with
                  Srv.Daemon.d_restarts = restarts;
                  d_supervised = true;
                  d_sup_started = sup_started;
                })
        else Srv.Daemon.run cfg
  in
  Astree_obs.Trace.close ();
  code

let cmd =
  let doc = "long-lived analysis server for astree" in
  Cmd.v
    (Cmd.info "astreed" ~doc)
    Term.(
      const run
      $ Arg.(
          value
          & opt string Srv.Daemon.default.Srv.Daemon.d_socket
          & info [ "socket" ] ~docv:"PATH"
              ~doc:"Unix-domain socket to listen on")
      $ Arg.(
          value & opt int Srv.Daemon.default.Srv.Daemon.d_workers
          & info [ "max-inflight" ]
              ~doc:
                "Worker processes, hence concurrently analyzed requests")
      $ Arg.(
          value
          & opt int Srv.Daemon.default.Srv.Daemon.d_queue_depth
          & info [ "queue-depth" ]
              ~doc:
                "Requests admitted beyond the in-flight limit; further \
                 ones are shed with a $(b,shed) reply (0 = no queue)")
      $ Arg.(
          value & opt float 0.
          & info [ "timeout" ] ~docv:"SECS"
              ~doc:
                "Default per-request wall-clock budget, applied when a \
                 request brings none (0 = unbounded)")
      $ Arg.(
          value & opt int 0
          & info [ "max-mem" ] ~docv:"MB"
              ~doc:
                "Default per-request major-heap watermark in MiB (0 = \
                 unbounded)")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "cache" ] ~docv:"DIR"
              ~doc:
                "Persist the resident summary store in $(docv) at \
                 shutdown and reuse it across daemon restarts")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "checkpoint" ] ~docv:"FILE"
              ~doc:
                "Periodically checkpoint the resident summary store to \
                 $(docv) and reload it at startup, so a restarted \
                 daemon is warm (default: $(b,daemon.ckpt) under \
                 $(b,--cache), or $(i,SOCKET)$(b,.ckpt) under \
                 $(b,--supervise))")
      $ Arg.(
          value
          & opt float Srv.Daemon.default.Srv.Daemon.d_checkpoint_s
          & info [ "checkpoint-period" ] ~docv:"SECS"
              ~doc:
                "Seconds between periodic checkpoint saves (0 = save \
                 whenever the resident store changed)")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "config" ] ~docv:"FILE"
              ~doc:
                "JSON config overlay (queue_depth, grace, timeout, \
                 max_mem, client_quota, jobs, backend, \
                 checkpoint_period, breaker_crashes, breaker_cooldown) \
                 loaded at startup and reread on SIGHUP without \
                 dropping in-flight requests")
      $ Arg.(
          value
          & opt int Srv.Daemon.default.Srv.Daemon.d_client_quota
          & info [ "client-quota" ] ~docv:"N"
              ~doc:
                "Queued requests allowed per client connection before \
                 shedding (0 = half the queue depth)")
      $ Arg.(
          value
          & opt int Srv.Daemon.default.Srv.Daemon.d_breaker_n
          & info [ "breaker-crashes" ] ~docv:"N"
              ~doc:
                "Consecutive worker crashes on one program that open \
                 its circuit breaker (0 = no breaker)")
      $ Arg.(
          value
          & opt float Srv.Daemon.default.Srv.Daemon.d_breaker_cooldown
          & info [ "breaker-cooldown" ] ~docv:"SECS"
              ~doc:
                "Seconds an open breaker refuses a program before \
                 letting one probe request through")
      $ Arg.(
          value & flag
          & info [ "supervise" ]
              ~doc:
                "Run the daemon as a supervised child, restarted with \
                 capped exponential backoff when it crashes; implies a \
                 checkpoint file so restarts come back warm")
      $ Arg.(
          value & opt int 0
          & info [ "max-restarts" ] ~docv:"N"
              ~doc:
                "Give up supervision after $(docv) restarts (0 = keep \
                 restarting forever)")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "http" ] ~docv:"PORT"
              ~doc:
                "Serve telemetry over HTTP on 127.0.0.1:$(docv): \
                 $(b,/metrics) (Prometheus text exposition), \
                 $(b,/healthz) (liveness), $(b,/readyz) (503 while \
                 draining, saturated or all breakers open) and \
                 $(b,/status) (the status-verb JSON); 0 picks a free \
                 port")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "access-log" ] ~docv:"FILE"
              ~doc:
                "Append one JSONL record per request (rid, verb, \
                 digest, outcome, queue/service seconds, cache hits) \
                 plus start/drain/checkpoint/restart events to $(docv)")
      $ Arg.(
          value
          & opt int (8 * 1024 * 1024)
          & info [ "access-log-max" ] ~docv:"BYTES"
              ~doc:
                "Rotate the access log (atomic rename to \
                 $(i,FILE)$(b,.1)) when it would exceed $(docv) bytes")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "trace" ] ~docv:"FILE"
              ~doc:
                "Write a structured event trace (requests plus \
                 re-emitted worker events) to $(docv)")
      $ Arg.(value & flag & info [ "verbose" ] ~doc:"Log requests on stderr"))

let () = exit (Cmd.eval' cmd)
