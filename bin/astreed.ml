(* The analysis daemon's command line.

   Usage:  astreed --socket PATH [--max-inflight N] [--queue-depth N]
                   [--timeout SECS] [--max-mem MB] [--cache DIR]
                   [--trace FILE] [--verbose]

   Serves newline-delimited JSON requests (analyze / status / metrics /
   shutdown) over a Unix-domain socket, keeping the typed-IR and
   function-summary caches resident across requests.  See DESIGN.md
   section 12 for the protocol and README "Server mode" for examples. *)

module Srv = Astree_server
open Cmdliner

let run socket workers queue_depth timeout max_mem cache_dir trace_file
    verbose =
  (match trace_file with
  | None -> ()
  | Some f ->
      Astree_obs.Trace.enabled := true;
      Astree_obs.Trace.set_sink (open_out f));
  let code =
    Srv.Daemon.run
      {
        Srv.Daemon.d_socket = socket;
        d_workers = max 1 workers;
        d_queue_depth = max 0 queue_depth;
        d_timeout = (if timeout > 0. then timeout else 0.);
        d_max_mem = max 0 max_mem;
        d_cache_dir = cache_dir;
        d_max_programs = Srv.Daemon.default.Srv.Daemon.d_max_programs;
        d_grace = Srv.Daemon.default.Srv.Daemon.d_grace;
        d_verbose = verbose;
      }
  in
  Astree_obs.Trace.close ();
  code

let cmd =
  let doc = "long-lived analysis server for astree" in
  Cmd.v
    (Cmd.info "astreed" ~doc)
    Term.(
      const run
      $ Arg.(
          value
          & opt string Srv.Daemon.default.Srv.Daemon.d_socket
          & info [ "socket" ] ~docv:"PATH"
              ~doc:"Unix-domain socket to listen on")
      $ Arg.(
          value & opt int Srv.Daemon.default.Srv.Daemon.d_workers
          & info [ "max-inflight" ]
              ~doc:
                "Worker processes, hence concurrently analyzed requests")
      $ Arg.(
          value
          & opt int Srv.Daemon.default.Srv.Daemon.d_queue_depth
          & info [ "queue-depth" ]
              ~doc:
                "Requests admitted beyond the in-flight limit; further \
                 ones are shed with a $(b,shed) reply (0 = no queue)")
      $ Arg.(
          value & opt float 0.
          & info [ "timeout" ] ~docv:"SECS"
              ~doc:
                "Default per-request wall-clock budget, applied when a \
                 request brings none (0 = unbounded)")
      $ Arg.(
          value & opt int 0
          & info [ "max-mem" ] ~docv:"MB"
              ~doc:
                "Default per-request major-heap watermark in MiB (0 = \
                 unbounded)")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "cache" ] ~docv:"DIR"
              ~doc:
                "Persist the resident summary store in $(docv) at \
                 shutdown and reuse it across daemon restarts")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "trace" ] ~docv:"FILE"
              ~doc:
                "Write a structured event trace (requests plus \
                 re-emitted worker events) to $(docv)")
      $ Arg.(value & flag & info [ "verbose" ] ~doc:"Log requests on stderr"))

let () = exit (Cmd.eval' cmd)
