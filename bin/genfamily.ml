(* Emit a member of the synthetic program family to a file (or stdout).

   Usage: genfamily --kloc 5 --seed 42 -o program.c
          genfamily --kloc 2 --tasks 4 --bugs 0.5 -o multi.c *)

module G = Astree_gen
open Cmdliner

let run kloc seed bug_ratio fuse tasks output =
  let cfg =
    {
      G.Generator.seed;
      target_lines = int_of_float (kloc *. 1000.0);
      mix = G.Shapes.all_safe_kinds;
      bug_ratio;
      fuse;
    }
  in
  if tasks = 1 || tasks < 0 then
    `Error (false, "--tasks needs at least 2 task functions (or 0 for none)")
  else
    let g =
      if tasks >= 2 then G.Generator.generate_tasks cfg ~tasks
      else G.Generator.generate cfg
    in
    (match output with
    | None -> print_string g.G.Generator.source
    | Some path ->
        let oc = open_out path in
        output_string oc g.G.Generator.source;
        close_out oc;
        Fmt.pr "wrote %s: %d lines, %d shapes%s@." path g.G.Generator.n_lines
          g.G.Generator.n_shapes
          (match g.G.Generator.task_fns with
          | [] -> ""
          | ts -> Fmt.str ", %d tasks" (List.length ts)));
    `Ok 0

let cmd =
  let doc = "generate synthetic periodic synchronous control programs" in
  Cmd.v
    (Cmd.info "genfamily" ~doc)
    Term.(
      ret
        (const run
        $ Arg.(value & opt float 1.0 & info [ "kloc" ] ~doc:"Approximate size in kLOC")
        $ Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Generator seed")
        $ Arg.(value & opt float 0.0 & info [ "bugs" ] ~doc:"Fraction of injected defects")
        $ Arg.(
            value
            & opt int 1
            & info [ "fuse" ]
                ~doc:
                  "Shapes per top-level function (>1 groups shapes into \
                   large stage functions)")
        $ Arg.(
            value
            & opt int 0
            & info [ "tasks" ]
                ~doc:
                  "Generate a multi-task member with this many task \
                   functions sharing ring channels (recorded in an \
                   astree-task marker); with --bugs, some channel \
                   producers are racy.  0 generates the sequential \
                   family")
        $ Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file")))

let () = exit (Cmd.eval' cmd)
