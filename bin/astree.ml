(* The analyzer command-line interface.

   Usage:  astree [options] file.c [more-files.c ...]

   Exposes the end-user parameters of Sect. 7: domain selection, widening
   thresholds, unrolling factors, trace-partitioned functions, decision-
   tree pack bounds, and the useful-octagon-pack reuse of Sect. 7.2.2. *)

module C = Astree_core
module F = Astree_frontend
module S = Astree_slicer
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* JSON output (--format json)                                         *)
(* ------------------------------------------------------------------ *)

let json_escape (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_str s = "\"" ^ json_escape s ^ "\""

let json_alarm (a : C.Alarm.t) : string =
  let prov =
    match a.C.Alarm.a_prov with
    | None -> ""
    | Some p ->
        Printf.sprintf
          ", \"chain\": [%s], \"domain\": %s, \"operands\": {%s}"
          (String.concat ", " (List.map json_str p.C.Alarm.p_chain))
          (json_str p.C.Alarm.p_domain)
          (String.concat ", "
             (List.map
                (fun (e, v) -> json_str e ^ ": " ^ json_str v)
                p.C.Alarm.p_operands))
  in
  Printf.sprintf
    "{\"kind\": %s, \"file\": %s, \"line\": %d, \"col\": %d, \"message\": %s%s}"
    (json_str (C.Alarm.kind_to_string a.C.Alarm.a_kind))
    (json_str a.C.Alarm.a_loc.F.Loc.file)
    a.C.Alarm.a_loc.F.Loc.line a.C.Alarm.a_loc.F.Loc.col
    (json_str a.C.Alarm.a_msg) prov

let json_stats (s : C.Analysis.stats) : string =
  let base =
    Printf.sprintf
      "\"globals_before\": %d, \"globals_after\": %d, \"cells\": %d, \
       \"statements\": %d, \"octagon_packs\": %d, \"octagon_useful\": %d, \
       \"ellipsoid_packs\": %d, \"decision_tree_packs\": %d, \"time\": %.6f"
      s.C.Analysis.s_globals_before s.C.Analysis.s_globals_after
      s.C.Analysis.s_cells s.C.Analysis.s_stmts s.C.Analysis.s_oct_packs
      s.C.Analysis.s_oct_useful s.C.Analysis.s_ell_packs
      s.C.Analysis.s_dt_packs s.C.Analysis.s_time
  in
  let cache =
    match s.C.Analysis.s_cache with
    | None -> ""
    | Some c ->
        Printf.sprintf
          ", \"cache\": {\"hits\": %d, \"misses\": %d, \"entries\": %d, \
           \"loaded\": %d, \"load_time\": %.6f, \"save_time\": %.6f}"
          c.C.Analysis.c_hits c.C.Analysis.c_misses c.C.Analysis.c_entries
          c.C.Analysis.c_loaded c.C.Analysis.c_load_time
          c.C.Analysis.c_save_time
  in
  "{" ^ base ^ cache ^ "}"

let json_degraded (d : C.Analysis.degraded) : string =
  Printf.sprintf
    "{\"reason\": %s, \"level\": %d, \"shed_octagon_packs\": %d, \
     \"shed_ellipsoid_packs\": %d, \"shed_decision_tree_packs\": %d, \
     \"partitioning_disabled\": %b, \"widening_accelerated\": %b}"
    (json_str d.C.Analysis.dg_reason)
    d.C.Analysis.dg_level d.C.Analysis.dg_shed_oct_packs
    d.C.Analysis.dg_shed_ell_packs d.C.Analysis.dg_shed_dt_packs
    d.C.Analysis.dg_partitioning_disabled d.C.Analysis.dg_widening_accelerated

(** The whole result as one JSON object: alarms (with provenance when
    recorded), statistics (cache counters always included when a cache
    ran — unlike the text report they are not a [--verbose] detail),
    the useful-octagon-pack ids, the deterministic result fingerprint
    ([Merge.fingerprint], the digest the equivalence tests compare),
    for degraded or interrupted runs a "degraded" block, and — only
    when [--metrics] is active — the full metrics registry. *)
let print_json ?(metrics = false) (r : C.Analysis.result) : unit =
  let degraded =
    match r.C.Analysis.r_stats.C.Analysis.s_degraded with
    | None -> ""
    | Some d -> Printf.sprintf ", \"degraded\": %s" (json_degraded d)
  in
  let metrics_block =
    (* opt-in: the registry holds volatile counters (timings, per-run
       cache traffic), and the default JSON must stay byte-comparable
       across equivalent runs (warm vs. cold cache, -j1 vs. -j4) *)
    if metrics then
      Printf.sprintf ", \"metrics\": %s"
        (Astree_obs.Metrics.render_json ~timers:false ())
    else ""
  in
  print_string
    (Printf.sprintf
       "{\"alarms\": [%s], \"stats\": %s, \"octagon_useful_ids\": [%s], \
        \"fingerprint\": %s%s%s}\n"
       (String.concat ", " (List.map json_alarm r.C.Analysis.r_alarms))
       (json_stats r.C.Analysis.r_stats)
       (String.concat ", "
          (List.map string_of_int (C.Analysis.useful_octagon_packs r)))
       (json_str (Astree_parallel.Merge.fingerprint r))
       degraded metrics_block)

let run files main no_oct no_ell no_dt no_clock no_lin no_thresholds unroll
    partitioned max_dt_bools useful_packs jobs cache_dir cache_mem no_cache
    timeout max_mem format dump_invariants dump_census slice_alarms profile
    trace_file metrics_file explain verbose =
  if files = [] then `Error (false, "no input files")
  else
    try
      if profile then Astree_domains.Profile.enabled := true;
      (* the trace sink is opened before any analysis work so frontend
         phase spans land in the file too; [Trace.close] at the end
         flushes whatever the ring still holds *)
      (match trace_file with
      | None -> ()
      | Some f ->
          Astree_obs.Trace.enabled := true;
          Astree_obs.Trace.set_sink (open_out f));
      if metrics_file <> None then Astree_obs.Metrics.timing := true;
      (* a SIGINT/SIGTERM mid-analysis tears down the worker pool,
         flushes the summary cache and prints the partial result *)
      Astree_robust.Budget.install_signal_handlers ();
      let jobs =
        if jobs = 0 then Astree_parallel.Scheduler.default_jobs ()
        else max 1 jobs
      in
      if jobs > 1 then Astree_parallel.Scheduler.register ();
      let summary_cache =
        if no_cache then C.Config.Cache_off
        else
          match cache_dir with
          | Some dir -> C.Config.Cache_dir dir
          | None ->
              if cache_mem then C.Config.Cache_mem else C.Config.Cache_off
      in
      if summary_cache <> C.Config.Cache_off then
        Astree_incremental.Summary.register ();
      let cfg =
        {
          C.Config.default with
          C.Config.jobs;
          summary_cache;
          timeout = (if timeout > 0. then timeout else 0.);
          max_mem_mb = max 0 max_mem;
          use_octagons = not no_oct;
          use_ellipsoids = not no_ell;
          use_decision_trees = not no_dt;
          use_clocked = not no_clock;
          use_linearization = not no_lin;
          widening_thresholds =
            (if no_thresholds then Astree_domains.Thresholds.none
             else Astree_domains.Thresholds.default);
          loop_unroll = unroll;
          partitioned_functions = partitioned;
          max_dtree_bools = max_dt_bools;
          useful_packs_only =
            (match useful_packs with
            | [] -> None
            | ids -> Some ("cli", ids));
        }
      in
      let sources = List.map (fun f -> (f, read_file f)) files in
      (* honor "/* astree-partition: f g ... */" markers unless the user
         supplied an explicit partition list; a file may carry several
         markers, with arbitrary whitespace after the colon *)
      let cfg =
        if partitioned <> [] then cfg
        else
          let marked =
            List.concat_map
              (fun (_, src) -> F.Preproc.partition_markers src)
              sources
            |> List.sort_uniq String.compare
          in
          if marked = [] then cfg
          else { cfg with C.Config.partitioned_functions = marked }
      in
      let p, _stats = C.Analysis.compile ~main sources in
      let r = Astree_robust.Degrade.analyze ~cfg p in
      (match metrics_file with
      | None -> ()
      | Some f ->
          let oc = open_out f in
          output_string oc (Astree_obs.Metrics.render_json ());
          output_char oc '\n';
          close_out oc);
      (match format with
      | `Json -> print_json ~metrics:(metrics_file <> None) r
      | `Text ->
          (* cache counters are a --verbose detail of the text report:
             default output stays byte-identical to the cache-less
             analyzer (JSON always carries them) *)
          let r =
            if verbose then r
            else
              {
                r with
                C.Analysis.r_stats =
                  { r.C.Analysis.r_stats with C.Analysis.s_cache = None };
              }
          in
          Fmt.pr "%a@." C.Analysis.pp_result r;
          if explain && r.C.Analysis.r_alarms <> [] then begin
            Fmt.pr "--- alarm provenance ---@.";
            List.iter
              (fun (al : C.Alarm.t) ->
                Fmt.pr "%a@." C.Alarm.pp_explain al)
              r.C.Analysis.r_alarms
          end;
          if verbose then
            Fmt.pr "useful octagon packs: %a@."
              Fmt.(list ~sep:comma int)
              (C.Analysis.useful_octagon_packs r));
      if dump_census then begin
        match C.Invariant_census.main_loop_census r with
        | Some c ->
            Fmt.pr "--- main loop invariant census (Sect. 9.4.1) ---@.%a@."
              C.Invariant_census.pp c
        | None -> Fmt.pr "no loop invariant recorded@."
      end;
      if dump_invariants then
        print_string (C.Invariant_dump.to_string r);
      (* per-domain cumulative timings and counters, on stderr so the
         regular (text or JSON) output stays byte-identical *)
      if profile then Astree_domains.Profile.report Format.err_formatter;
      if slice_alarms && r.C.Analysis.r_alarms <> [] then begin
        let g = S.Depgraph.build p in
        List.iter
          (fun (al : C.Alarm.t) ->
            Fmt.pr "--- slice for %a ---@." C.Alarm.pp al;
            let sl =
              S.Slicer.slice g { S.Slicer.c_loc = al.C.Alarm.a_loc; c_vars = None }
            in
            Fmt.pr "%a@." S.Slicer.pp_slice sl)
          r.C.Analysis.r_alarms
      end;
      Astree_obs.Trace.close ();
      (* exit codes: 0 clean, 1 alarms, 3 degraded-but-complete,
         130 interrupted (the usual 128+SIGINT convention) *)
      (match r.C.Analysis.r_stats.C.Analysis.s_degraded with
      | Some d when d.C.Analysis.dg_reason = "interrupted" -> `Ok 130
      | Some _ -> `Ok 3
      | None -> if C.Analysis.n_alarms r = 0 then `Ok 0 else `Ok 1)
    with e -> (
      (* flush whatever the trace ring holds — a trace that stops at the
         failing phase is exactly what one wants for a post-mortem *)
      Astree_obs.Trace.close ();
      match e with
      | F.Lexer.Error (m, l) | F.Parser.Error (m, l)
      | F.Typecheck.Error (m, l) ->
          `Error (false, Fmt.str "%a: %s" F.Loc.pp l m)
      | F.Preproc.Error (m, l) ->
          `Error (false, Fmt.str "%a: preprocessor: %s" F.Loc.pp l m)
      | C.Iterator.Analysis_error m -> `Error (false, m)
      | Sys_error msg -> `Error (false, msg)
      | e -> raise e)

let files_arg =
  Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"C source files")

let main_arg =
  Arg.(value & opt string "main" & info [ "main" ] ~doc:"Entry-point function")

let flag name doc = Arg.(value & flag & info [ name ] ~doc)

let cmd =
  let doc = "abstract-interpretation analyzer for synchronous C programs" in
  Cmd.v
    (Cmd.info "astree" ~doc)
    Term.(
      ret
        (const run $ files_arg $ main_arg
        $ flag "no-octagons" "Disable the octagon domain (Sect. 6.2.2)"
        $ flag "no-ellipsoids" "Disable the ellipsoid domain (Sect. 6.2.3)"
        $ flag "no-decision-trees" "Disable decision trees (Sect. 6.2.4)"
        $ flag "no-clock" "Disable the clocked domain (Sect. 6.2.1)"
        $ flag "no-linearization" "Disable symbolic linearization (Sect. 6.3)"
        $ flag "no-thresholds" "Classical widening, no thresholds (Sect. 7.1.2)"
        $ Arg.(value & opt int 1 & info [ "unroll" ] ~doc:"Loop unrolling factor (Sect. 7.1.1)")
        $ Arg.(value & opt (list string) [] & info [ "partition" ] ~doc:"Functions analyzed with trace partitioning (Sect. 7.1.5)")
        $ Arg.(value & opt int 3 & info [ "max-dtree-bools" ] ~doc:"Booleans per decision-tree pack (Sect. 7.2.3)")
        $ Arg.(value & opt (list int) [] & info [ "useful-packs" ] ~doc:"Octagon pack ids to keep (Sect. 7.2.2)")
        $ Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~doc:"Worker processes for the parallel analysis (1 = sequential, 0 = one per core)")
        $ Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR" ~doc:"Persist function summaries in $(docv), reusing them across runs (results are unaffected)")
        $ flag "cache-mem" "In-memory function-summary cache for this run only"
        $ flag "no-cache" "Disable the summary cache, overriding $(b,--cache) and $(b,--cache-mem)"
        $ Arg.(value & opt float 0. & info [ "timeout" ] ~docv:"SECS" ~doc:"Wall-clock budget for the analysis; on overrun, precision is shed soundly (degraded exit code 3) instead of aborting (0 = unbounded)")
        $ Arg.(value & opt int 0 & info [ "max-mem" ] ~docv:"MB" ~doc:"Major-heap watermark in MiB, with the same sound degradation as $(b,--timeout) (0 = unbounded)")
        $ Arg.(value & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text & info [ "format" ] ~doc:"Output format: $(b,text) or $(b,json) (one object with alarms, stats and the result fingerprint)")
        $ flag "dump-invariants" "Print loop invariants"
        $ flag "census" "Print the main-loop invariant census (Sect. 9.4.1)"
        $ flag "slice" "Print a backward slice for each alarm (Sect. 3.3)"
        $ flag "profile" "Print per-domain cumulative timings and counters on stderr at exit (merged across workers)"
        $ Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc:"Write a structured event trace (one JSON object per line: phase spans, per-loop fixpoint records, call inlining, parallel dispatch, cache traffic, degradation) to $(docv)")
        $ Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc:"Write the unified metrics registry (counters, gauges, histograms, timers) as JSON to $(docv); with $(b,--format json) the registry is also embedded in the report")
        $ flag "explain" "After the report, print each alarm with its provenance: the inlining call chain, the abstract domain that raised it, and the abstract operand values"
        $ flag "verbose" "Print extra statistics"))

let () = exit (Cmd.eval' cmd)
