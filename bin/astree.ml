(* The analyzer command-line interface.

   Usage:  astree [options] file.c [more-files.c ...]

   Exposes the end-user parameters of Sect. 7: domain selection, widening
   thresholds, unrolling factors, trace-partitioned functions, decision-
   tree pack bounds, and the useful-octagon-pack reuse of Sect. 7.2.2. *)

module C = Astree_core
module F = Astree_frontend
module S = Astree_slicer
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run files main no_oct no_ell no_dt no_clock no_lin no_thresholds unroll
    partitioned max_dt_bools useful_packs jobs dump_invariants dump_census
    slice_alarms verbose =
  if files = [] then `Error (false, "no input files")
  else
    try
      let jobs =
        if jobs = 0 then Astree_parallel.Scheduler.default_jobs ()
        else max 1 jobs
      in
      if jobs > 1 then Astree_parallel.Scheduler.register ();
      let cfg =
        {
          C.Config.default with
          C.Config.jobs;
          use_octagons = not no_oct;
          use_ellipsoids = not no_ell;
          use_decision_trees = not no_dt;
          use_clocked = not no_clock;
          use_linearization = not no_lin;
          widening_thresholds =
            (if no_thresholds then Astree_domains.Thresholds.none
             else Astree_domains.Thresholds.default);
          loop_unroll = unroll;
          partitioned_functions = partitioned;
          max_dtree_bools = max_dt_bools;
          useful_packs_only =
            (match useful_packs with
            | [] -> None
            | ids -> Some ("cli", ids));
        }
      in
      let sources = List.map (fun f -> (f, read_file f)) files in
      (* honor "/* astree-partition: f g ... */" markers unless the user
         supplied an explicit partition list *)
      let cfg =
        if partitioned <> [] then cfg
        else
          let marked =
            (* a file may carry several markers: collect them all *)
            List.concat_map
              (fun (_, src) ->
                let re = Str.regexp "astree-partition: \\([^*]*\\)\\*/" in
                let rec scan pos acc =
                  match Str.search_forward re src pos with
                  | _ ->
                      let fns =
                        String.split_on_char ' '
                          (String.trim (Str.matched_group 1 src))
                      in
                      scan (Str.match_end ()) (List.rev_append fns acc)
                  | exception Not_found -> List.rev acc
                in
                scan 0 [])
              sources
            |> List.sort_uniq String.compare
          in
          if marked = [] then cfg
          else { cfg with C.Config.partitioned_functions = marked }
      in
      let p, _stats = C.Analysis.compile ~main sources in
      let r = C.Analysis.analyze ~cfg p in
      Fmt.pr "%a@." C.Analysis.pp_result r;
      if verbose then
        Fmt.pr "useful octagon packs: %a@."
          Fmt.(list ~sep:comma int)
          (C.Analysis.useful_octagon_packs r);
      if dump_census then begin
        match C.Invariant_census.main_loop_census r with
        | Some c ->
            Fmt.pr "--- main loop invariant census (Sect. 9.4.1) ---@.%a@."
              C.Invariant_census.pp c
        | None -> Fmt.pr "no loop invariant recorded@."
      end;
      if dump_invariants then
        print_string (C.Invariant_dump.to_string r);
      if slice_alarms && r.C.Analysis.r_alarms <> [] then begin
        let g = S.Depgraph.build p in
        List.iter
          (fun (al : C.Alarm.t) ->
            Fmt.pr "--- slice for %a ---@." C.Alarm.pp al;
            let sl =
              S.Slicer.slice g { S.Slicer.c_loc = al.C.Alarm.a_loc; c_vars = None }
            in
            Fmt.pr "%a@." S.Slicer.pp_slice sl)
          r.C.Analysis.r_alarms
      end;
      if C.Analysis.n_alarms r = 0 then `Ok 0 else `Ok 1
    with
    | F.Lexer.Error (m, l) | F.Parser.Error (m, l) | F.Typecheck.Error (m, l)
      ->
        `Error (false, Fmt.str "%a: %s" F.Loc.pp l m)
    | F.Preproc.Error (m, l) ->
        `Error (false, Fmt.str "%a: preprocessor: %s" F.Loc.pp l m)
    | C.Iterator.Analysis_error m -> `Error (false, m)

let files_arg =
  Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"C source files")

let main_arg =
  Arg.(value & opt string "main" & info [ "main" ] ~doc:"Entry-point function")

let flag name doc = Arg.(value & flag & info [ name ] ~doc)

let cmd =
  let doc = "abstract-interpretation analyzer for synchronous C programs" in
  Cmd.v
    (Cmd.info "astree" ~doc)
    Term.(
      ret
        (const run $ files_arg $ main_arg
        $ flag "no-octagons" "Disable the octagon domain (Sect. 6.2.2)"
        $ flag "no-ellipsoids" "Disable the ellipsoid domain (Sect. 6.2.3)"
        $ flag "no-decision-trees" "Disable decision trees (Sect. 6.2.4)"
        $ flag "no-clock" "Disable the clocked domain (Sect. 6.2.1)"
        $ flag "no-linearization" "Disable symbolic linearization (Sect. 6.3)"
        $ flag "no-thresholds" "Classical widening, no thresholds (Sect. 7.1.2)"
        $ Arg.(value & opt int 1 & info [ "unroll" ] ~doc:"Loop unrolling factor (Sect. 7.1.1)")
        $ Arg.(value & opt (list string) [] & info [ "partition" ] ~doc:"Functions analyzed with trace partitioning (Sect. 7.1.5)")
        $ Arg.(value & opt int 3 & info [ "max-dtree-bools" ] ~doc:"Booleans per decision-tree pack (Sect. 7.2.3)")
        $ Arg.(value & opt (list int) [] & info [ "useful-packs" ] ~doc:"Octagon pack ids to keep (Sect. 7.2.2)")
        $ Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~doc:"Worker processes for the parallel analysis (1 = sequential, 0 = one per core)")
        $ flag "dump-invariants" "Print loop invariants"
        $ flag "census" "Print the main-loop invariant census (Sect. 9.4.1)"
        $ flag "slice" "Print a backward slice for each alarm (Sect. 3.3)"
        $ flag "verbose" "Print extra statistics"))

let () = exit (Cmd.eval' cmd)
