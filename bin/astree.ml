(* The analyzer command-line interface.

   Usage:  astree [options] file.c [more-files.c ...]

   Exposes the end-user parameters of Sect. 7: domain selection, widening
   thresholds, unrolling factors, trace-partitioned functions, decision-
   tree pack bounds, and the useful-octagon-pack reuse of Sect. 7.2.2.

   With --connect SOCK the analysis is delegated to a running astreed
   daemon (warm typed-IR and summary caches); the reply carries the same
   JSON report bytes this binary would print in-process, and when no
   daemon listens the analysis silently runs in-process instead. *)

module C = Astree_core
module F = Astree_frontend
module S = Astree_slicer
module Srv = Astree_server
module Conc = Astree_conc
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* JSON rendering is shared with the daemon workers (Astree_server.Report)
   so client-mode and in-process output are byte-identical *)
let print_json ?metrics ?interference (r : C.Analysis.result) : unit =
  print_string (Srv.Report.render ?metrics ?interference r ^ "\n")

let run files main tasks_opt no_oct no_ell no_dt no_clock no_lin no_thresholds
    unroll partitioned max_dt_bools useful_packs jobs par_backend cache_dir
    cache_mem no_cache timeout max_mem connect retries no_fallback format
    dump_invariants dump_census slice_alarms profile trace_file metrics_file
    explain verbose =
  if files = [] then `Error (false, "no input files")
  else
    try
      if profile then Astree_domains.Profile.enabled := true;
      (* the trace sink is opened before any analysis work so frontend
         phase spans land in the file too; [Trace.close] at the end
         flushes whatever the ring still holds *)
      (match trace_file with
      | None -> ()
      | Some f ->
          Astree_obs.Trace.enabled := true;
          Astree_obs.Trace.set_sink (open_out f));
      if metrics_file <> None then Astree_obs.Metrics.timing := true;
      (* a SIGINT/SIGTERM mid-analysis tears down the worker pool,
         flushes the summary cache and prints the partial result *)
      Astree_robust.Budget.install_signal_handlers ();
      let jobs =
        if jobs = 0 then Astree_parallel.Scheduler.default_jobs ()
        else max 1 jobs
      in
      let options =
        {
          Srv.Service.o_no_oct = no_oct;
          o_no_ell = no_ell;
          o_no_dt = no_dt;
          o_no_clock = no_clock;
          o_no_lin = no_lin;
          o_no_thresholds = no_thresholds;
          o_unroll = unroll;
          o_partition = partitioned;
          o_max_dtree_bools = max_dt_bools;
          o_useful_packs = useful_packs;
          o_jobs = jobs;
          o_backend = par_backend;
          o_timeout = (if timeout > 0. then timeout else 0.);
          o_max_mem = max 0 max_mem;
          o_cache =
            (if no_cache then `Off
             else
               match cache_dir with
               | Some dir -> `Dir dir
               | None -> if cache_mem then `Mem else `Default);
        }
      in
      let sources = List.map (fun f -> (f, read_file f)) files in
      (* task entry points: --tasks wins; otherwise the astree-task
         markers of the sources, in document order (first occurrence) *)
      let tasks =
        if tasks_opt <> [] then tasks_opt
        else
          let seen = Hashtbl.create 8 in
          List.concat_map (fun (_, src) -> F.Preproc.task_markers src) sources
          |> List.filter (fun t ->
                 if Hashtbl.mem seen t then false
                 else begin
                   Hashtbl.replace seen t ();
                   true
                 end)
      in
      let multi_task = List.compare_length_with tasks 1 > 0 in
      let in_process () =
        if jobs > 1 then Astree_parallel.Scheduler.register ();
        let cfg = Srv.Service.config_of options ~sources in
        if C.Config.cache_enabled cfg then Astree_incremental.Summary.register ();
        let p, _stats = C.Analysis.compile ~main sources in
        let r, interference =
          if multi_task then begin
            let cr = Conc.Fixpoint.analyze ~cfg ~tasks p in
            ( cr.Conc.Fixpoint.c_result,
              Some
                {
                  Srv.Report.i_tasks = List.length tasks;
                  i_rounds = cr.Conc.Fixpoint.c_rounds;
                  i_stabilized = cr.Conc.Fixpoint.c_stabilized;
                  i_shared = List.length cr.Conc.Fixpoint.c_shared;
                } )
          end
          else (Astree_robust.Degrade.analyze ~cfg p, None)
        in
        (match metrics_file with
        | None -> ()
        | Some f ->
            let oc = open_out f in
            output_string oc (Astree_obs.Metrics.render_json ());
            output_char oc '\n';
            close_out oc);
        (match format with
        | `Json -> print_json ~metrics:(metrics_file <> None) ?interference r
        | `Text ->
            (* cache counters are a --verbose detail of the text report:
               default output stays byte-identical to the cache-less
               analyzer (JSON always carries them) *)
            let r = if verbose then r else Srv.Report.strip_cache r in
            Fmt.pr "%a@." C.Analysis.pp_result r;
            (match interference with
            | None -> ()
            | Some i ->
                Fmt.pr
                  "interference fixpoint: %d tasks, %d shared variables, %d \
                   rounds%s@."
                  i.Srv.Report.i_tasks i.Srv.Report.i_shared
                  i.Srv.Report.i_rounds
                  (if i.Srv.Report.i_stabilized then ""
                   else " (round budget hit: everything-top fallback)"));
            if explain && r.C.Analysis.r_alarms <> [] then begin
              Fmt.pr "--- alarm provenance ---@.";
              List.iter
                (fun (al : C.Alarm.t) ->
                  Fmt.pr "%a@." C.Alarm.pp_explain al)
                r.C.Analysis.r_alarms
            end;
            if verbose then
              Fmt.pr "useful octagon packs: %a@."
                Fmt.(list ~sep:comma int)
                (C.Analysis.useful_octagon_packs r));
        if dump_census then begin
          match C.Invariant_census.main_loop_census r with
          | Some c ->
              Fmt.pr "--- main loop invariant census (Sect. 9.4.1) ---@.%a@."
                C.Invariant_census.pp c
          | None -> Fmt.pr "no loop invariant recorded@."
        end;
        if dump_invariants then
          print_string (C.Invariant_dump.to_string r);
        (* per-domain cumulative timings and counters, on stderr so the
           regular (text or JSON) output stays byte-identical *)
        if profile then Astree_domains.Profile.report Format.err_formatter;
        if slice_alarms && r.C.Analysis.r_alarms <> [] then begin
          let g = S.Depgraph.build p in
          List.iter
            (fun (al : C.Alarm.t) ->
              Fmt.pr "--- slice for %a ---@." C.Alarm.pp al;
              let sl =
                S.Slicer.slice g
                  { S.Slicer.c_loc = al.C.Alarm.a_loc; c_vars = None }
              in
              Fmt.pr "%a@." S.Slicer.pp_slice sl)
            r.C.Analysis.r_alarms
        end;
        Astree_obs.Trace.close ();
        `Ok (Srv.Report.exit_code r)
      in
      let local_only =
        dump_invariants || dump_census || slice_alarms || profile
        || trace_file <> None || metrics_file <> None
      in
      (match connect with
      | Some _ when multi_task ->
          (* the daemon's one-request = one-analysis worker model does
             not fit the interference fixpoint; it would refuse anyway *)
          prerr_endline
            "astree: multi-task programs are analyzed in-process (the \
             daemon does not serve the interference fixpoint)";
          in_process ()
      | Some sock when format = `Json && not local_only -> (
          let req =
            Srv.Client.analyze_request_json ~sources ~main ~options ()
          in
          let policy =
            { Astree_robust.Backoff.default with b_retries = max 0 retries }
          in
          match Srv.Client.request_retry ~policy sock req with
          | Srv.Client.No_daemon ->
              (* byte-identical output either way: only the transport
                 differs, so the fallback is silent apart from stderr *)
              if no_fallback then
                `Error (false, "no daemon listening on " ^ sock)
              else begin
                prerr_endline
                  ("astree: no daemon listening on " ^ sock
                 ^ ", analyzing in-process");
                in_process ()
              end
          | Srv.Client.Exhausted reason ->
              (* the daemon exists but stayed unreachable or overloaded
                 through the whole retry budget: exit 4, or analyze
                 here — cold, but correct — when falling back is
                 allowed *)
              prerr_endline
                ("astree: daemon unavailable after " ^ string_of_int retries
               ^ " retries (" ^ reason ^ ")");
              if no_fallback then `Ok 4
              else begin
                prerr_endline "astree: analyzing in-process";
                in_process ()
              end
          | Srv.Client.Reply rep -> (
              (* the echoed request id joins this invocation to the
                 daemon's trace span and access-log line *)
              if verbose then
                Option.iter
                  (fun rid -> prerr_endline ("astree: daemon request " ^ rid))
                  rep.Srv.Client.r_rid;
              match (rep.Srv.Client.r_status, rep.Srv.Client.r_report) with
              | "ok", Some report ->
                  print_string (report ^ "\n");
                  `Ok rep.Srv.Client.r_exit
              | "ok", None -> `Error (false, "daemon: malformed reply")
              | ("shed" | "shutting_down"), _ ->
                  (* unreachable with retries > 0 (request_retry retries
                     these), kept for a zero-retry policy *)
                  prerr_endline
                    ("astree: daemon refused the request ("
                    ^ rep.Srv.Client.r_status ^ ")");
                  `Ok 4
              | _ ->
                  `Error
                    ( false,
                      "daemon: "
                      ^ Option.value ~default:"unknown error"
                          rep.Srv.Client.r_error )))
      | Some _ ->
          (* text output and the report extras need the result value in
             this process *)
          prerr_endline
            "astree: --connect only serves --format json without report \
             extras; analyzing in-process";
          in_process ()
      | None -> in_process ())
    with e -> (
      (* flush whatever the trace ring holds — a trace that stops at the
         failing phase is exactly what one wants for a post-mortem *)
      Astree_obs.Trace.close ();
      match e with
      | F.Lexer.Error (m, l) | F.Parser.Error (m, l)
      | F.Typecheck.Error (m, l) ->
          `Error (false, Fmt.str "%a: %s" F.Loc.pp l m)
      | F.Preproc.Error (m, l) ->
          `Error (false, Fmt.str "%a: preprocessor: %s" F.Loc.pp l m)
      | C.Iterator.Analysis_error m -> `Error (false, m)
      | Sys_error msg -> `Error (false, msg)
      | e -> raise e)

let files_arg =
  Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"C source files")

let main_arg =
  Arg.(value & opt string "main" & info [ "main" ] ~doc:"Entry-point function")

let flag name doc = Arg.(value & flag & info [ name ] ~doc)

let cmd =
  let doc = "abstract-interpretation analyzer for synchronous C programs" in
  Cmd.v
    (Cmd.info "astree" ~doc)
    Term.(
      ret
        (const run $ files_arg $ main_arg
        $ Arg.(value & opt (list string) [] & info [ "tasks" ] ~docv:"FN,..." ~doc:"Analyze as a multi-task program with these entry points (interference fixpoint); default: the $(b,astree-task) markers of the sources")
        $ flag "no-octagons" "Disable the octagon domain (Sect. 6.2.2)"
        $ flag "no-ellipsoids" "Disable the ellipsoid domain (Sect. 6.2.3)"
        $ flag "no-decision-trees" "Disable decision trees (Sect. 6.2.4)"
        $ flag "no-clock" "Disable the clocked domain (Sect. 6.2.1)"
        $ flag "no-linearization" "Disable symbolic linearization (Sect. 6.3)"
        $ flag "no-thresholds" "Classical widening, no thresholds (Sect. 7.1.2)"
        $ Arg.(value & opt int 1 & info [ "unroll" ] ~doc:"Loop unrolling factor (Sect. 7.1.1)")
        $ Arg.(value & opt (list string) [] & info [ "partition" ] ~doc:"Functions analyzed with trace partitioning (Sect. 7.1.5)")
        $ Arg.(value & opt int 3 & info [ "max-dtree-bools" ] ~doc:"Booleans per decision-tree pack (Sect. 7.2.3)")
        $ Arg.(value & opt (list int) [] & info [ "useful-packs" ] ~doc:"Octagon pack ids to keep (Sect. 7.2.2)")
        $ Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~doc:"Workers for the parallel analysis (1 = sequential, 0 = one per core)")
        $ Arg.(value & opt (enum [ ("fork", `Fork); ("domains", `Domains); ("auto", `Auto) ]) `Auto & info [ "par-backend" ] ~docv:"BACKEND" ~doc:"Worker backend for $(b,-j): $(b,fork) (process isolation, per-job timeouts, fault injection), $(b,domains) (OCaml 5 shared memory, no serialization), or $(b,auto) (domains unless fault injection or a resource budget is armed). Results are identical either way")
        $ Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR" ~doc:"Persist function summaries in $(docv), reusing them across runs (results are unaffected)")
        $ flag "cache-mem" "In-memory function-summary cache for this run only"
        $ flag "no-cache" "Disable the summary cache, overriding $(b,--cache) and $(b,--cache-mem)"
        $ Arg.(value & opt float 0. & info [ "timeout" ] ~docv:"SECS" ~doc:"Wall-clock budget for the analysis; on overrun, precision is shed soundly (degraded exit code 3) instead of aborting (0 = unbounded)")
        $ Arg.(value & opt int 0 & info [ "max-mem" ] ~docv:"MB" ~doc:"Major-heap watermark in MiB, with the same sound degradation as $(b,--timeout) (0 = unbounded)")
        $ Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"SOCK" ~doc:"Delegate the analysis to the astreed daemon listening on $(docv) (warm caches); shed replies and connection failures are retried with backoff, then the analysis falls back in-process (exit code 4 with $(b,--no-fallback)); silently analyze in-process when no daemon was ever there")
        $ Arg.(value & opt int 4 & info [ "retries" ] ~docv:"N" ~doc:"Retry budget for $(b,--connect): shed replies, resets and restarting daemons are retried up to $(docv) times with jittered exponential backoff honoring the daemon's $(b,retry_after_s) hint")
        $ flag "no-fallback" "With $(b,--connect): never analyze in-process; exit 2 when no daemon exists, 4 when the retry budget is exhausted"
        $ Arg.(value & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text & info [ "format" ] ~doc:"Output format: $(b,text) or $(b,json) (one object with alarms, stats and the result fingerprint)")
        $ flag "dump-invariants" "Print loop invariants"
        $ flag "census" "Print the main-loop invariant census (Sect. 9.4.1)"
        $ flag "slice" "Print a backward slice for each alarm (Sect. 3.3)"
        $ flag "profile" "Print per-domain cumulative timings and counters on stderr at exit (merged across workers)"
        $ Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc:"Write a structured event trace (one JSON object per line: phase spans, per-loop fixpoint records, call inlining, parallel dispatch, cache traffic, degradation) to $(docv)")
        $ Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc:"Write the unified metrics registry (counters, gauges, histograms, timers) as JSON to $(docv); with $(b,--format json) the registry is also embedded in the report")
        $ flag "explain" "After the report, print each alarm with its provenance: the inlining call chain, the abstract domain that raised it, and the abstract operand values"
        $ flag "verbose" "Print extra statistics"))

let () = exit (Cmd.eval' cmd)
